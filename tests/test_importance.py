"""Tests for the class-based importance scores (eqs. 4-8).

Includes a hand-constructed network where the class-specific critical
pathways are known exactly, verifying that the Taylor score recovers
them.
"""

from collections import OrderedDict

import numpy as np
import pytest

from repro.core.importance import (
    ImportanceResult,
    ImportanceScorer,
    neuron_scores_to_filter_scores,
)
from repro.models.mlp import MLP
from repro.nn import Linear, Module, ReLU
from repro.tensor import Tensor


class TwoPathNet(Module):
    """Hand-wired net: hidden unit 0 feeds only class 0, unit 1 only
    class 1, unit 2 feeds both, unit 3 feeds neither (prunable)."""

    def __init__(self):
        super().__init__()
        self.fc_in = Linear(2, 4, bias=False, rng=np.random.default_rng(0))
        self.relu_in = ReLU()
        self.fc_mid = Linear(4, 4, bias=False, rng=np.random.default_rng(1))
        self.relu_mid = ReLU()
        self.fc_out = Linear(4, 2, bias=False, rng=np.random.default_rng(2))
        # Input -> hidden: make all hidden units see positive input.
        self.fc_in.weight.data[...] = np.abs(self.fc_in.weight.data) + 0.5
        # Hidden mid layer: identity so paths stay separated.
        self.fc_mid.weight.data[...] = np.eye(4)
        # Hidden -> output wiring defining the pathways.
        self.fc_out.weight.data[...] = np.array(
            [
                [1.0, 0.0, 1.0, 0.0],  # class 0 reads units 0 and 2
                [0.0, 1.0, 1.0, 0.0],  # class 1 reads units 1 and 2
            ]
        )

    def forward(self, x):
        return self.fc_out(self.relu_mid(self.fc_mid(self.relu_in(self.fc_in(x)))))

    def tap_modules(self):
        return OrderedDict([("fc_mid", self.relu_mid)])


class TestKnownPathways:
    @pytest.fixture
    def scored(self):
        model = TwoPathNet()
        rng = np.random.default_rng(5)
        batches = {
            0: np.abs(rng.standard_normal((8, 2))) + 0.1,
            1: np.abs(rng.standard_normal((8, 2))) + 0.1,
        }
        return ImportanceScorer(model).score(batches)

    def test_unit0_only_class0(self, scored):
        beta = scored.beta["fc_mid"]  # (num_classes, 4)
        assert beta[0, 0] == pytest.approx(1.0)
        assert beta[1, 0] == pytest.approx(0.0)

    def test_unit1_only_class1(self, scored):
        beta = scored.beta["fc_mid"]
        assert beta[0, 1] == pytest.approx(0.0)
        assert beta[1, 1] == pytest.approx(1.0)

    def test_unit2_both_classes(self, scored):
        gamma = scored.neuron_scores["fc_mid"]
        assert gamma[2] == pytest.approx(2.0)

    def test_unit3_no_class(self, scored):
        gamma = scored.neuron_scores["fc_mid"]
        assert gamma[3] == pytest.approx(0.0)

    def test_gamma_is_sum_of_beta(self, scored):
        np.testing.assert_allclose(
            scored.neuron_scores["fc_mid"], scored.beta["fc_mid"].sum(axis=0)
        )


class TestScorerMechanics:
    def make_mlp_and_batches(self, num_classes=3):
        model = MLP(10, (8, 6), num_classes, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        batches = {
            m: rng.standard_normal((5, 10)) for m in range(num_classes)
        }
        return model, batches

    def test_scores_within_class_count(self):
        model, batches = self.make_mlp_and_batches()
        result = ImportanceScorer(model).score(batches)
        for gamma in result.neuron_scores.values():
            assert np.all(gamma >= 0.0)
            assert np.all(gamma <= len(batches) + 1e-12)

    def test_num_classes_recorded(self):
        model, batches = self.make_mlp_and_batches()
        assert ImportanceScorer(model).score(batches).num_classes == 3

    def test_taps_default_from_model(self):
        model, _ = self.make_mlp_and_batches()
        scorer = ImportanceScorer(model)
        assert list(scorer.taps) == ["fc1"]

    def test_explicit_taps_override(self):
        model, batches = self.make_mlp_and_batches()
        taps = OrderedDict([("fc0", model.relu0), ("fc1", model.relu1)])
        result = ImportanceScorer(model, taps=taps).score(batches)
        assert set(result.neuron_scores) == {"fc0", "fc1"}

    def test_model_without_taps_raises(self):
        class Bare(Module):
            def forward(self, x):
                return x

        with pytest.raises(TypeError):
            ImportanceScorer(Bare())

    def test_empty_taps_raises(self):
        model, _ = self.make_mlp_and_batches()
        with pytest.raises(ValueError):
            ImportanceScorer(model, taps={})

    def test_empty_batches_raises(self):
        model, _ = self.make_mlp_and_batches()
        with pytest.raises(ValueError):
            ImportanceScorer(model).score({})

    def test_class_index_out_of_range_raises(self):
        model, batches = self.make_mlp_and_batches()
        batches[99] = batches[0]
        with pytest.raises(ValueError):
            ImportanceScorer(model).score(batches)

    def test_model_restored_to_training_mode(self):
        model, batches = self.make_mlp_and_batches()
        model.train()
        ImportanceScorer(model).score(batches)
        assert model.training

    def test_hooks_removed_after_scoring(self):
        model, batches = self.make_mlp_and_batches()
        ImportanceScorer(model).score(batches)
        assert len(model.relu1._forward_hooks) == 0

    def test_deterministic(self):
        model, batches = self.make_mlp_and_batches()
        r1 = ImportanceScorer(model).score(batches)
        r2 = ImportanceScorer(model).score(batches)
        np.testing.assert_array_equal(
            r1.neuron_scores["fc1"], r2.neuron_scores["fc1"]
        )

    def test_large_eps_zeroes_scores(self):
        model, batches = self.make_mlp_and_batches()
        result = ImportanceScorer(model, eps=1e12).score(batches)
        assert np.all(result.neuron_scores["fc1"] == 0.0)


class TestFilterReduction:
    def test_linear_passthrough(self):
        gamma = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(neuron_scores_to_filter_scores(gamma), gamma)

    def test_conv_max_over_spatial(self):
        gamma = np.zeros((2, 3, 3))
        gamma[0, 1, 2] = 5.0
        gamma[1, 0, 0] = 1.0
        np.testing.assert_array_equal(
            neuron_scores_to_filter_scores(gamma), [5.0, 1.0]
        )

    def test_reduction_returns_copy(self):
        gamma = np.array([1.0, 2.0])
        scores = neuron_scores_to_filter_scores(gamma)
        scores[0] = 99.0
        assert gamma[0] == 1.0

    def test_unsupported_shape_raises(self):
        with pytest.raises(ValueError):
            neuron_scores_to_filter_scores(np.zeros((2, 2)))

    def test_importance_result_filter_scores(self):
        result = ImportanceResult(
            neuron_scores=OrderedDict(
                [("conv", np.ones((2, 4, 4))), ("fc", np.array([3.0, 1.0]))]
            ),
            beta=OrderedDict(),
            num_classes=4,
        )
        scores = result.filter_scores()
        np.testing.assert_array_equal(scores["conv"], [1.0, 1.0])
        assert result.max_score() == 3.0


class TestConvTaps:
    def test_conv_model_scoring(self):
        """Scoring a small conv net produces per-position neuron scores."""
        from repro.models.vgg import VGGSmall

        model = VGGSmall(num_classes=3, image_size=8, width=4, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        batches = {m: rng.standard_normal((3, 3, 8, 8)) for m in range(3)}
        result = ImportanceScorer(model).score(batches)
        conv_gamma = result.neuron_scores["conv1"]
        assert conv_gamma.ndim == 3  # (C, H, W)
        assert conv_gamma.shape[0] == 8  # 2 * width filters
        filter_scores = result.filter_scores()["conv1"]
        assert filter_scores.shape == (8,)
