"""Tests for figure render functions using synthetic result objects.

These cover the formatting layer of every benchmark without any
training, so regressions in the harness output surface in seconds.
"""

from collections import OrderedDict

import numpy as np
import pytest

from repro.core.config import CQConfig
from repro.core.search import SearchResult, SearchStep
from repro.quant.bitmap import BitWidthMap


def make_search_result():
    bit_map = BitWidthMap(
        {"conv1": np.array([0, 2, 4]), "fc5": np.array([1, 3])},
        {"conv1": 9, "fc5": 10},
    )
    steps = [
        SearchStep("prune", 1, 0.5, 0.8, 3.5, 0.5),
        SearchStep("prune", 1, 1.0, 0.45, 3.1, 0.5),
        SearchStep("squeeze", 4, 9.0, 0.44, 2.0, 0.26),
    ]
    return SearchResult(
        thresholds=np.array([1.0, 2.0, 3.0, 9.0]),
        bit_map=bit_map,
        steps=steps,
        final_accuracy=0.44,
        evaluations=3,
    )


class TestFig3Render:
    def test_render_contains_snapshots(self):
        from repro.experiments.fig3 import Fig3Result, ThresholdSnapshot, render

        result = Fig3Result(
            search=make_search_result(),
            snapshots=[
                ThresholdSnapshot(1, 1.0, 0.45, 3.1, 0.5, "prune"),
                ThresholdSnapshot(4, 9.0, 0.44, 2.0, 0.26, "squeeze"),
            ],
            sorted_scores={},
            config=CQConfig(target_avg_bits=2.0),
        )
        text = render(result)
        assert "p_1" in text and "p_4" in text
        assert "squeeze" in text
        assert "final thresholds" in text


class TestFig4Render:
    def test_render_tables_per_panel(self):
        from repro.experiments.fig4 import Fig4Result, PanelResult, render

        panel = PanelResult(
            model_name="vgg-small",
            dataset_name="synth10",
            fp_accuracy=0.95,
            cq_accuracy={2: 0.80, 3: 0.90, 4: 0.94},
            apn_accuracy={2: 0.78, 3: 0.89, 4: 0.93},
            cq_avg_bits={2: 1.98, 3: 2.97, 4: 3.96},
        )
        text = render(Fig4Result(panels=[panel]))
        assert "vgg-small on synth10" in text
        assert "2.0/2.0" in text and "4.0/4.0" in text
        assert "0.8000" in text

    def test_render_missing_setting_shows_nan(self):
        from repro.experiments.fig4 import Fig4Result, PanelResult, render

        panel = PanelResult("m", "d", 0.9)
        text = render(Fig4Result(panels=[panel]))
        assert "nan" in text


class TestFig5Render:
    def test_render_settings(self):
        from repro.experiments.fig5 import Fig5Result, render

        result = Fig5Result(
            fp_accuracy=0.9,
            cq_accuracy={(1, 3): 0.7, (1, 7): 0.72, (2, 4): 0.8, (2, 7): 0.82},
            wn_accuracy={(1, 3): 0.6, (1, 7): 0.65, (2, 4): 0.7, (2, 7): 0.75},
            cq_avg_bits={(1, 3): 0.98, (1, 7): 0.98, (2, 4): 1.95, (2, 7): 1.95},
            wn_overflow={(1, 3): 0.0, (1, 7): 0.0, (2, 4): 0.01, (2, 7): 0.0},
        )
        text = render(result)
        assert "1.0/3.0" in text and "2.0/7.0" in text
        assert "FP reference accuracy" in text


class TestFig6Render:
    def test_render_layer_rows(self):
        from repro.experiments.fig6 import Fig6Result, render

        summary = OrderedDict(
            [
                (
                    "conv1",
                    {
                        "sorted_scores": np.array([0.5, 2.0, 9.0]),
                        "thresholds": np.array([1.0, 2.0, 3.0, 9.0]),
                        "filters_per_bit": {0: 1, 2: 1, 4: 1},
                        "num_filters": 3,
                    },
                )
            ]
        )
        result = Fig6Result(
            summary=summary,
            thresholds=np.array([1.0, 2.0, 3.0, 9.0]),
            avg_bits=2.0,
            search=make_search_result(),
            config=CQConfig(target_avg_bits=2.0, max_bits=4),
        )
        text = render(result)
        assert "layer-1 (conv1)" in text
        assert "thresholds:" in text


class TestFig7Render:
    def test_render_distributions(self):
        from repro.experiments.fig7 import Fig7Result, render

        result = Fig7Result(
            distributions={
                ("vgg-small", "synth10"): {
                    2: {0: 100, 1: 0, 2: 50, 3: 0, 4: 50, 5: 0, 6: 0},
                    3: {0: 50, 1: 0, 2: 50, 3: 50, 4: 50, 5: 0, 6: 0},
                    4: {0: 0, 1: 0, 2: 0, 3: 50, 4: 100, 5: 50, 6: 0},
                }
            },
            avg_bits={("vgg-small", "synth10"): {2: 1.5, 3: 2.25, 4: 4.0}},
        )
        text = render(result)
        assert "vgg-small" in text
        assert "0-bit" in text and "6-bit" in text


class TestFig2Render:
    def test_render_histograms(self):
        from repro.core.importance import ImportanceResult
        from repro.experiments.fig2 import Fig2Result, render

        histograms = OrderedDict(
            [("conv0", (np.array([1, 2, 1]), np.array([0.0, 3.3, 6.6, 10.0])))]
        )
        result = Fig2Result(
            histograms=histograms,
            skewness=OrderedDict([("conv0", 0.5)]),
            importance=None,
            fp_accuracy=0.9,
            num_classes=10,
        )
        text = render(result)
        assert "Figure 2" in text
        assert "conv0" in text
        assert "skewness" in text


class TestAblationsRender:
    def test_render_variants(self):
        from repro.experiments.ablations import AblationResult, render

        result = AblationResult(
            accuracy=OrderedDict(
                [("cq-max-kd", 0.8), ("random-kd", 0.5)]
            ),
            avg_bits=OrderedDict([("cq-max-kd", 1.98), ("random-kd", 1.99)]),
            fp_accuracy=0.95,
            budget=2.0,
        )
        text = render(result)
        assert "cq-max-kd" in text and "random-kd" in text
        assert "FP reference" in text
