"""Tests for repro.serve.trace: seeded arrival processes + batch mixes."""

import json

import numpy as np
import pytest

from repro.serve import TRACE_KINDS, TraceConfig, TrafficTrace, generate_trace


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown trace kind"):
            TraceConfig(kind="lumpy")

    def test_bad_rate(self):
        with pytest.raises(ValueError, match="rate_rps"):
            TraceConfig(rate_rps=0.0)

    def test_bad_requests(self):
        with pytest.raises(ValueError, match="at least one request"):
            TraceConfig(requests=0)

    def test_bad_batch_sizes(self):
        with pytest.raises(ValueError, match="batch_sizes"):
            TraceConfig(batch_sizes=(1, 0))

    def test_weights_must_match_sizes(self):
        with pytest.raises(ValueError, match="batch_weights"):
            TraceConfig(batch_sizes=(1, 4), batch_weights=(1.0,))

    def test_bad_duty_and_burst(self):
        with pytest.raises(ValueError, match="duty"):
            TraceConfig(kind="bursty", duty=1.5)
        with pytest.raises(ValueError, match="burst_factor"):
            TraceConfig(kind="bursty", burst_factor=0.5)

    def test_bad_amplitude(self):
        with pytest.raises(ValueError, match="amplitude"):
            TraceConfig(kind="diurnal", amplitude=1.0)


class TestDeterminism:
    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_same_seed_same_trace(self, kind):
        config = TraceConfig(
            kind=kind, requests=80, rate_rps=400.0, seed=7, batch_sizes=(1, 2, 4)
        )
        first = generate_trace(config)
        second = generate_trace(config)
        np.testing.assert_array_equal(first.arrivals_s, second.arrivals_s)
        np.testing.assert_array_equal(first.batch_sizes, second.batch_sizes)

    def test_different_seed_different_trace(self):
        base = dict(kind="poisson", requests=80, rate_rps=400.0)
        first = generate_trace(TraceConfig(seed=0, **base))
        second = generate_trace(TraceConfig(seed=1, **base))
        assert not np.array_equal(first.arrivals_s, second.arrivals_s)

    def test_payload_is_json_able_and_deterministic(self):
        config = TraceConfig(kind="bursty", requests=40, rate_rps=300.0, seed=3)
        first = json.dumps(
            generate_trace(config).to_payload(), sort_keys=True, allow_nan=False
        )
        second = json.dumps(
            generate_trace(config).to_payload(), sort_keys=True, allow_nan=False
        )
        assert first == second


class TestArrivalShapes:
    def test_uniform_is_evenly_spaced(self):
        trace = generate_trace(TraceConfig(kind="uniform", requests=10, rate_rps=100))
        np.testing.assert_allclose(np.diff(trace.arrivals_s), 0.01)

    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_arrivals_start_at_zero_and_are_sorted(self, kind):
        trace = generate_trace(TraceConfig(kind=kind, requests=60, rate_rps=500, seed=2))
        assert trace.arrivals_s[0] == 0.0
        assert np.all(np.diff(trace.arrivals_s) >= 0)
        assert trace.requests == 60

    def test_poisson_mean_rate_roughly_honoured(self):
        trace = generate_trace(
            TraceConfig(kind="poisson", requests=400, rate_rps=1000.0, seed=0)
        )
        # 400 exponential(1ms) gaps: mean within a loose statistical band.
        assert 0.5 < trace.offered_rps / 1000.0 < 2.0

    def test_bursty_is_burstier_than_poisson(self):
        """The on-off trace's inter-arrival CV exceeds the Poisson CV
        (which is ~1): bursts pack arrivals, troughs stretch gaps."""
        n, rate = 400, 1000.0
        poisson = generate_trace(
            TraceConfig(kind="poisson", requests=n, rate_rps=rate, seed=5)
        )
        bursty = generate_trace(
            TraceConfig(
                kind="bursty", requests=n, rate_rps=rate, seed=5, burst_factor=8.0
            )
        )

        def cv(trace):
            gaps = np.diff(trace.arrivals_s)
            return gaps.std() / gaps.mean()

        assert cv(bursty) > cv(poisson)

    def test_diurnal_concentrates_arrivals_in_the_peak(self):
        """More arrivals land in the sinusoid's high half-period than
        the low one."""
        config = TraceConfig(
            kind="diurnal",
            requests=400,
            rate_rps=1000.0,
            seed=1,
            periods=1.0,
            amplitude=0.8,
        )
        trace = generate_trace(config)
        period = (config.requests / config.rate_rps) / config.periods
        phase = (trace.arrivals_s % period) / period
        peak_half = np.count_nonzero(phase < 0.5)  # sin > 0 half
        assert peak_half > 0.6 * trace.requests


class TestBatchMix:
    def test_single_size_is_constant(self):
        trace = generate_trace(TraceConfig(requests=20, batch_sizes=(3,)))
        assert trace.rows == 60
        assert set(trace.batch_sizes.tolist()) == {3}

    def test_mixed_sizes_drawn_from_the_set(self):
        trace = generate_trace(
            TraceConfig(
                kind="poisson",
                requests=200,
                seed=9,
                batch_sizes=(1, 4, 8),
                batch_weights=(8.0, 1.0, 1.0),
            )
        )
        seen = set(trace.batch_sizes.tolist())
        assert seen <= {1, 4, 8}
        assert len(seen) > 1
        # The heavily weighted size dominates.
        assert np.count_nonzero(trace.batch_sizes == 1) > 100
        assert trace.rows == int(trace.batch_sizes.sum())
