"""Tests for repro.serve.artifact: container, sidecar dtypes,
reconstruction, and the copy-on-lease LRU cache."""

import struct
import threading

import numpy as np
import pytest

from repro.quant.export import ExportMismatchError, export_quantized_weights, verify_export
from repro.quant.packing import write_bitstream
from repro.quant.qmodules import quantized_layers
from repro.serve import (
    ArtifactCache,
    ArtifactManifest,
    artifact_from_search,
    compile_artifact,
    load_artifact,
    load_artifact_bytes,
    map_artifact_file,
    save_artifact,
    serialize_artifact,
)
from repro.tensor.tensor import Tensor, no_grad


@pytest.fixture
def quantized_mlp(quantized_mlp_factory):
    return quantized_mlp_factory()


class TestManifest:
    def test_round_trip(self):
        manifest = ArtifactManifest(
            model="mlp", dataset="synth100", scale="small", seed=3,
            num_classes=100, image_size=16, max_bits=4, act_bits=2,
            extra={"accuracy": 0.5},
        )
        restored = ArtifactManifest.from_dict(manifest.to_dict())
        assert restored == manifest

    def test_non_finite_extras_become_null(self):
        manifest = ArtifactManifest(model="mlp", extra={"bad": float("nan")})
        assert manifest.to_dict()["extra"]["bad"] is None

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            ArtifactManifest.from_dict({"model": "mlp", "frobnicate": 1})

    def test_input_shape(self):
        assert ArtifactManifest(model="mlp", image_size=8).input_shape == (3, 8, 8)


class TestContainer:
    def test_save_load_round_trip(self, quantized_mlp, tmp_path):
        model, manifest = quantized_mlp
        path = tmp_path / "model.cqw"
        written = save_artifact(path, model, manifest)
        assert path.stat().st_size == written
        artifact = load_artifact(path)
        assert artifact.manifest == manifest
        assert artifact.nbytes == written
        export = export_quantized_weights(model)
        assert set(artifact.export.layers) == set(export.layers)
        for name, layer in export.layers.items():
            for f in range(len(layer.bits_per_filter)):
                np.testing.assert_array_equal(
                    artifact.export.layers[name].codes[f], layer.codes[f]
                )

    def test_content_key_is_stable_and_content_based(self, quantized_mlp, tmp_path):
        model, manifest = quantized_mlp
        data = serialize_artifact(model, manifest)
        assert load_artifact_bytes(data).content_key == load_artifact_bytes(data).content_key
        (tmp_path / "a.cqw").write_bytes(data)
        (tmp_path / "b.cqw").write_bytes(data)
        assert (
            load_artifact(tmp_path / "a.cqw").content_key
            == load_artifact(tmp_path / "b.cqw").content_key
        )

    def test_compiled_artifact_saves_its_exact_bytes(self, quantized_mlp, tmp_path):
        model, manifest = quantized_mlp
        artifact = compile_artifact(model, manifest)
        path = tmp_path / "compiled.cqw"
        written = artifact.save(path)
        assert written == artifact.nbytes == path.stat().st_size
        assert load_artifact(path).content_key == artifact.content_key

    def test_bare_cqw1_without_sidecar_rejected(self, quantized_mlp, tmp_path):
        model, _manifest = quantized_mlp
        path = tmp_path / "bare.cqw"
        write_bitstream(export_quantized_weights(model), path)
        with pytest.raises(ValueError, match="sidecar"):
            load_artifact(path)

    def test_unknown_trailing_section_rejected(self, quantized_mlp):
        model, _manifest = quantized_mlp
        from repro.quant.packing import serialize_export

        data = serialize_export(export_quantized_weights(model)) + b"XXXX123"
        with pytest.raises(ValueError, match="CQS1"):
            load_artifact_bytes(data)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="CQW1"):
            load_artifact_bytes(b"NOPE" + b"\x00" * 16)

    def test_sidecar_excludes_quantized_weights(self, quantized_mlp):
        model, manifest = quantized_mlp
        artifact = compile_artifact(model, manifest)
        quantized = set(quantized_layers(model))
        for name in quantized:
            assert f"{name}.weight" not in artifact.state
            assert f"{name}.quant_bits" in artifact.state
        # Unquantized first/output layers ride along in full.
        assert any(key.endswith("fc0.weight") for key in artifact.state)

    def test_byte_breakdown_accounts_for_everything(self, quantized_mlp):
        model, manifest = quantized_mlp
        artifact = compile_artifact(model, manifest)
        assert artifact.payload_nbytes > 0 and artifact.sidecar_nbytes > 0
        assert artifact.payload_nbytes + artifact.sidecar_nbytes == artifact.nbytes
        breakdown = artifact.size_breakdown()
        assert str(artifact.payload_nbytes) in breakdown
        assert artifact.sidecar_dtype in breakdown


class TestSidecarDtype:
    """The CQS2 tagged container and its legacy-CQS1 compatibility."""

    def test_default_is_float32_and_tagged(self, quantized_mlp):
        model, manifest = quantized_mlp
        data = serialize_artifact(model, manifest)
        assert b"CQS2" in data
        assert load_artifact_bytes(data).sidecar_dtype == "float32"

    def test_float64_writes_legacy_cqs1_layout(self, quantized_mlp):
        model, manifest = quantized_mlp
        data = serialize_artifact(model, manifest, sidecar_dtype="float64")
        assert b"CQS1" in data and b"CQS2" not in data
        artifact = load_artifact_bytes(data)
        assert artifact.sidecar_dtype == "float64"
        # Lossless: the state round-trips bit for bit.
        from repro.serve.artifact import _serving_state

        for name, value in _serving_state(model).items():
            np.testing.assert_array_equal(artifact.state[name], value)

    def test_hand_packed_legacy_sidecar_still_loads(self, quantized_mlp):
        """A v1 sidecar framed by hand (the pre-CQS2 writer's layout)
        must keep loading — deployed artifacts are immortal."""
        import json

        from repro.quant.packing import serialize_export
        from repro.serve.artifact import _serving_state

        model, manifest = quantized_mlp
        state = _serving_state(model)
        manifest_bytes = json.dumps(
            manifest.to_dict(), sort_keys=True, allow_nan=False
        ).encode("utf-8")
        chunks = [
            b"CQS1",
            struct.pack("<I", len(manifest_bytes)),
            manifest_bytes,
            struct.pack("<I", len(state)),
        ]
        for name, array in state.items():
            array = np.asarray(array, dtype=np.float64)
            name_bytes = name.encode("utf-8")
            chunks.append(struct.pack("<H", len(name_bytes)))
            chunks.append(name_bytes)
            chunks.append(struct.pack("<B", array.ndim))
            chunks.append(struct.pack(f"<{array.ndim}I", *array.shape))
            chunks.append(array.tobytes())
        data = serialize_export(export_quantized_weights(model)) + b"".join(chunks)
        artifact = load_artifact_bytes(data)
        assert artifact.sidecar_dtype == "float64"
        for name, value in state.items():
            np.testing.assert_array_equal(artifact.state[name], value)

    def test_float32_sidecar_is_measurably_smaller(self, quantized_mlp):
        model, manifest = quantized_mlp
        wide = load_artifact_bytes(
            serialize_artifact(model, manifest, sidecar_dtype="float64")
        )
        compact = load_artifact_bytes(
            serialize_artifact(model, manifest, sidecar_dtype="float32")
        )
        # Same payload, roughly half the sidecar: for the tiny preset
        # the sidecar dominates, so the whole artifact shrinks a lot.
        assert compact.payload_nbytes == wide.payload_nbytes
        assert compact.sidecar_nbytes < 0.6 * wide.sidecar_nbytes
        assert compact.nbytes < 0.75 * wide.nbytes

    def test_float16_is_smaller_still(self, quantized_mlp):
        model, manifest = quantized_mlp
        f32 = serialize_artifact(model, manifest, sidecar_dtype="float32")
        f16 = serialize_artifact(model, manifest, sidecar_dtype="float16")
        assert len(f16) < len(f32)
        assert load_artifact_bytes(f16).sidecar_dtype == "float16"

    def test_float32_state_is_the_rounded_original(self, quantized_mlp):
        """The narrowing happens exactly once, at pack time: the loaded
        state equals the original cast through float32 — no double
        rounding, no drift across loads."""
        from repro.serve.artifact import _serving_state

        model, manifest = quantized_mlp
        artifact = load_artifact_bytes(
            serialize_artifact(model, manifest, sidecar_dtype="float32")
        )
        for name, value in _serving_state(model).items():
            expected = np.asarray(value).astype(np.float32).astype(np.float64)
            np.testing.assert_array_equal(artifact.state[name], expected)

    def test_float32_artifact_builds_and_serves(self, quantized_mlp, rng):
        model, manifest = quantized_mlp
        serving = compile_artifact(model, manifest, sidecar_dtype="float32").model()
        batch = rng.standard_normal((4, 3, 8, 8))
        with no_grad():
            got = serving(Tensor(batch)).data
            expected = model(Tensor(batch)).data
        np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-6)

    def test_unknown_dtype_rejected(self, quantized_mlp):
        model, manifest = quantized_mlp
        with pytest.raises(ValueError, match="sidecar dtype"):
            serialize_artifact(model, manifest, sidecar_dtype="int8")

    def test_unknown_tensor_tag_rejected(self, quantized_mlp):
        model, manifest = quantized_mlp
        data = bytearray(serialize_artifact(model, manifest, sidecar_dtype="float32"))
        # Corrupt the first tensor's dtype tag: it sits right after the
        # first tensor name, which follows the CQS2 magic + manifest.
        offset = data.index(b"CQS2") + 4
        (manifest_len,) = struct.unpack_from("<I", data, offset)
        offset += 4 + manifest_len + 4  # manifest + tensor count
        (name_len,) = struct.unpack_from("<H", data, offset)
        tag_offset = offset + 2 + name_len
        data[tag_offset] = 250
        with pytest.raises(ValueError, match="dtype tag"):
            load_artifact_bytes(bytes(data))


class TestServingModel:
    def test_weights_are_bit_exact_with_effective_weight(self, quantized_mlp):
        # Quantized weights travel as integer codes, so reconstruction
        # is bitwise whatever the sidecar dtype (float32 default here).
        model, manifest = quantized_mlp
        serving = compile_artifact(model, manifest).model()
        reference = quantized_layers(model)
        for name, layer in quantized_layers(serving).items():
            assert layer.weight_quant_enabled is False
            np.testing.assert_array_equal(
                layer.weight.data, reference[name].effective_weight().data
            )

    def test_forward_parity_weights_only(self, quantized_mlp, rng):
        model, manifest = quantized_mlp
        serving = compile_artifact(
            model, manifest, sidecar_dtype="float64"
        ).model()
        batch = rng.standard_normal((6, 3, 8, 8))
        with no_grad():
            expected = model(Tensor(batch)).data
            got = serving(Tensor(batch)).data
        np.testing.assert_array_equal(got, expected)

    def test_forward_parity_with_quantized_activations(
        self, quantized_mlp_factory, rng
    ):
        model, manifest = quantized_mlp_factory(act_bits=2)
        serving = compile_artifact(
            model, manifest, sidecar_dtype="float64"
        ).model()
        batch = rng.standard_normal((6, 3, 8, 8))
        with no_grad():
            expected = model(Tensor(batch)).data
            got = serving(Tensor(batch)).data
        np.testing.assert_array_equal(got, expected)

    def test_model_is_built_once(self, quantized_mlp):
        model, manifest = quantized_mlp
        artifact = compile_artifact(model, manifest)
        assert artifact.model() is artifact.model()

    def test_clone_model_is_private_and_bit_identical(self, quantized_mlp):
        model, manifest = quantized_mlp
        artifact = compile_artifact(model, manifest)
        prototype = artifact.model()
        clone = artifact.clone_model()
        assert clone is not prototype
        proto_state = prototype.state_dict()
        clone_state = clone.state_dict()
        assert set(proto_state) == set(clone_state)
        for name, value in proto_state.items():
            np.testing.assert_array_equal(clone_state[name], value)
        # Mutating the clone leaves the prototype untouched.
        first_name = next(name for name, _ in clone.named_parameters())
        dict(clone.named_parameters())[first_name].data[...] += 1.0
        np.testing.assert_array_equal(
            dict(prototype.named_parameters())[first_name].data,
            proto_state[first_name],
        )

    def test_artifact_from_search_bit_map(self, quantized_mlp_factory, rng):
        from repro.experiments.presets import build_preset_model
        from repro.quant.qmodules import extract_bit_map

        quantized, manifest = quantized_mlp_factory()
        float_model = build_preset_model(
            "mlp", num_classes=4, image_size=8, scale="tiny", seed=1
        )
        # Carry the float weights over so the arrangement is the only delta.
        state = {
            key: value
            for key, value in quantized.state_dict().items()
            if not (key.endswith("quant_bits") or key.endswith("act_range"))
        }
        float_model.load_state_dict(state, strict=False)
        artifact = artifact_from_search(
            float_model, extract_bit_map(quantized), manifest,
            sidecar_dtype="float64",
        )
        batch = rng.standard_normal((4, 3, 8, 8))
        with no_grad():
            expected = quantized(Tensor(batch)).data
            got = artifact.model()(Tensor(batch)).data
        np.testing.assert_array_equal(got, expected)


class TestVerifyExportStrict:
    def test_strict_raises_with_layer_and_error(self, quantized_mlp):
        model, _manifest = quantized_mlp
        export = export_quantized_weights(model)
        name = next(iter(export.layers))
        # Corrupt one non-empty code array.
        layer = export.layers[name]
        victim = next(f for f, b in enumerate(layer.bits_per_filter) if int(b) > 0)
        layer.codes[victim] = layer.codes[victim] ^ 1
        assert verify_export(model, export) is False
        with pytest.raises(ExportMismatchError, match=name) as error:
            verify_export(model, export, strict=True)
        assert "max abs error" in str(error.value)

    def test_strict_passes_on_clean_export(self, quantized_mlp):
        model, _manifest = quantized_mlp
        assert verify_export(model, strict=True) is True

    def test_compile_runs_strict_verification(self, quantized_mlp, monkeypatch):
        model, manifest = quantized_mlp
        import repro.serve.artifact as artifact_module

        def broken_export(_model):
            export = export_quantized_weights(model)
            layer = next(iter(export.layers.values()))
            victim = next(
                f for f, b in enumerate(layer.bits_per_filter) if int(b) > 0
            )
            layer.codes[victim] = layer.codes[victim] ^ 1
            return export

        monkeypatch.setattr(
            artifact_module, "export_quantized_weights", broken_export
        )
        with pytest.raises(ExportMismatchError):
            compile_artifact(model, manifest)
        # verify=False skips the guard (the corruption ships).
        assert compile_artifact(model, manifest, verify=False) is not None


class TestZeroCopyLoad:
    """load_artifact_bytes over memoryviews: parse in place, account
    the bytes as shared; plain bytes stay private without a copy."""

    def test_bytes_are_kept_without_copy_and_private(self, quantized_mlp):
        model, manifest = quantized_mlp
        data = serialize_artifact(model, manifest)
        artifact = load_artifact_bytes(data)
        assert artifact.data is data  # no defensive copy
        assert artifact.shared_nbytes == 0
        assert artifact.private_nbytes == artifact.nbytes == len(data)

    def test_memoryview_parses_in_place_as_shared(self, quantized_mlp):
        model, manifest = quantized_mlp
        data = serialize_artifact(model, manifest)
        view = memoryview(data)
        artifact = load_artifact_bytes(view)
        assert isinstance(artifact.data, memoryview)
        assert artifact.data.obj is data  # same buffer, zero-copy
        assert artifact.shared_nbytes == artifact.nbytes == len(data)
        assert artifact.private_nbytes == 0
        # Identical bytes => identical content identity either way.
        assert artifact.content_key == load_artifact_bytes(data).content_key

    def test_bytearray_is_snapshotted(self, quantized_mlp):
        model, manifest = quantized_mlp
        data = serialize_artifact(model, manifest)
        mutable = bytearray(data)
        artifact = load_artifact_bytes(mutable)
        key = artifact.content_key
        mutable[len(mutable) // 2] ^= 0xFF  # cannot drift the parsed copy
        assert artifact.content_key == key
        assert bytes(artifact.data) == data

    def test_mmap_load_shares_the_file_mapping(self, quantized_mlp, tmp_path):
        model, manifest = quantized_mlp
        path = tmp_path / "model.cqw"
        save_artifact(path, model, manifest)
        mapped = load_artifact(path, mmap_mode=True)
        copied = load_artifact(path)
        assert mapped.content_key == copied.content_key
        assert mapped.shared_nbytes == mapped.nbytes
        assert copied.shared_nbytes == 0
        # Bit-exact forwards out of the mapping.
        x = Tensor(np.zeros((1, 3, 8, 8), dtype=np.float64))
        with no_grad():
            np.testing.assert_array_equal(
                mapped.model()(x).data, copied.model()(x).data
            )

    def test_map_artifact_file_view_is_readonly(self, quantized_mlp, tmp_path):
        model, manifest = quantized_mlp
        path = tmp_path / "model.cqw"
        save_artifact(path, model, manifest)
        view = map_artifact_file(path)
        try:
            assert view.readonly
            assert bytes(view) == path.read_bytes()
        finally:
            view.release()


class TestArtifactCache:
    def test_hits_are_free_and_shared(self, quantized_mlp, tmp_path):
        model, manifest = quantized_mlp
        path = tmp_path / "model.cqw"
        save_artifact(path, model, manifest)
        cache = ArtifactCache(capacity=2)
        first = cache.load(path)
        second = cache.load(path)
        assert second is first
        assert second.model() is first.model()
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert "1 hits, 1 misses" in cache.stats.summary()

    def test_keyed_by_content_not_path(self, quantized_mlp, tmp_path):
        model, manifest = quantized_mlp
        data = serialize_artifact(model, manifest)
        (tmp_path / "a.cqw").write_bytes(data)
        (tmp_path / "b.cqw").write_bytes(data)
        cache = ArtifactCache()
        assert cache.load(tmp_path / "b.cqw") is cache.load(tmp_path / "a.cqw")
        assert cache.stats.hits == 1

    def test_lru_eviction(self, quantized_mlp_factory, tmp_path):
        cache = ArtifactCache(capacity=1)
        model_a, manifest_a = quantized_mlp_factory(bits_seed=0)
        model_b, manifest_b = quantized_mlp_factory(bits_seed=9)
        bytes_a = serialize_artifact(model_a, manifest_a)
        bytes_b = serialize_artifact(model_b, manifest_b)
        assert bytes_a != bytes_b
        first = cache.load_bytes(bytes_a)
        cache.load_bytes(bytes_b)
        assert cache.stats.evictions == 1
        assert cache.load_bytes(bytes_a) is not first  # rebuilt after eviction
        assert cache.stats.misses == 3 and cache.stats.hits == 0

    def test_race_losing_build_counts_as_race_not_hit(
        self, quantized_mlp, monkeypatch
    ):
        """Two threads load the same uncached bytes: the loser's build
        is thrown away — neither saved work (hit) nor a cache entry
        (miss). The `loads` identity must still hold."""
        import repro.serve.artifact as artifact_module

        model, manifest = quantized_mlp
        data = serialize_artifact(model, manifest)
        cache = ArtifactCache()
        real_load = artifact_module.load_artifact_bytes
        first_build_started = threading.Event()
        winner_inserted = threading.Event()
        calls = []

        def stalling_load(payload):
            calls.append(1)
            if len(calls) == 1:  # the loser: build, then wait out the winner
                first_build_started.set()
                assert winner_inserted.wait(timeout=10)
            return real_load(payload)

        monkeypatch.setattr(artifact_module, "load_artifact_bytes", stalling_load)
        results = {}

        def loser():
            results["loser"] = cache.load_bytes(data)

        thread = threading.Thread(target=loser)
        thread.start()
        assert first_build_started.wait(timeout=10)
        results["winner"] = cache.load_bytes(data)
        winner_inserted.set()
        thread.join(timeout=10)
        assert not thread.is_alive()

        assert results["loser"] is results["winner"]  # first build kept
        stats = cache.stats
        assert stats.misses == 1 and stats.races == 1 and stats.hits == 0
        # The accounting identity: every load is a hit, a miss or a race.
        assert stats.loads == stats.hits + stats.misses + stats.races == 2
        # A later load is a plain hit.
        assert cache.load_bytes(data) is results["winner"]
        assert cache.stats.hits == 1 and cache.stats.loads == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ArtifactCache(capacity=0)

    def test_summary_splits_shared_and_private_bytes(
        self, quantized_mlp, tmp_path
    ):
        model, manifest = quantized_mlp
        path = tmp_path / "model.cqw"
        save_artifact(path, model, manifest)
        cache = ArtifactCache()
        private = cache.load(path)
        assert f"0 shared / {private.nbytes} private bytes" in cache.stats.summary()
        cache.clear()
        shared = cache.load(path, mmap_mode=True)
        assert shared.shared_nbytes == shared.nbytes
        assert f"{shared.nbytes} shared / 0 private bytes" in cache.stats.summary()

    def test_clear(self, quantized_mlp):
        model, manifest = quantized_mlp
        cache = ArtifactCache()
        cache.load_bytes(serialize_artifact(model, manifest))
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0


class TestCopyOnLease:
    """ArtifactCache.lease: private clones, refcounts, eviction safety."""

    def test_leases_share_artifact_but_not_models(self, quantized_mlp, tmp_path):
        model, manifest = quantized_mlp
        path = tmp_path / "model.cqw"
        save_artifact(path, model, manifest)
        cache = ArtifactCache()
        first = cache.lease(path)
        second = cache.lease(path)
        assert first.artifact is second.artifact
        assert first.model is not second.model
        assert first.model is not first.artifact.model()
        for name, value in first.model.state_dict().items():
            np.testing.assert_array_equal(second.model.state_dict()[name], value)
        # One parse+build, one hit, two live claims.
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert cache.stats.leases == 2 and cache.active_leases() == 2
        first.release()
        second.release()
        assert cache.active_leases() == 0
        assert cache.stats.releases == 2

    def test_release_is_idempotent_and_context_managed(self, quantized_mlp):
        model, manifest = quantized_mlp
        cache = ArtifactCache()
        data = serialize_artifact(model, manifest)
        with cache.lease(data) as lease:
            assert not lease.released
            assert cache.active_leases() == 1
        assert lease.released
        lease.release()  # idempotent
        assert cache.stats.releases == 1
        assert cache.active_leases() == 0

    def test_lease_adopts_parsed_artifacts(self, quantized_mlp):
        model, manifest = quantized_mlp
        artifact = compile_artifact(model, manifest)
        cache = ArtifactCache()
        lease = cache.lease(artifact)
        assert lease.artifact is artifact
        assert cache.stats.misses == 1
        again = cache.lease(artifact)
        assert cache.stats.hits == 1
        lease.release()
        again.release()

    def test_eviction_skips_leased_entries(self, quantized_mlp_factory):
        cache = ArtifactCache(capacity=1)
        model_a, manifest_a = quantized_mlp_factory(bits_seed=0)
        model_b, manifest_b = quantized_mlp_factory(bits_seed=9)
        lease_a = cache.lease(serialize_artifact(model_a, manifest_a))
        cache.load_bytes(serialize_artifact(model_b, manifest_b))
        # A is leased: B is the (LRU-violating but safe) eviction victim,
        # and A's lease keeps working.
        assert len(cache) == 1
        assert cache.stats.evictions == 1
        extra = cache.lease(serialize_artifact(model_a, manifest_a))
        assert extra.artifact is lease_a.artifact  # A is still the cached entry
        extra.release()
        # Releasing A makes it evictable again.
        lease_a.release()
        cache.load_bytes(serialize_artifact(model_b, manifest_b))
        assert cache.stats.evictions == 2

    def test_bad_lease_source_rejected(self):
        with pytest.raises(TypeError, match="lease source"):
            ArtifactCache().lease(42)

    def test_lease_stats_in_summary(self, quantized_mlp):
        model, manifest = quantized_mlp
        cache = ArtifactCache()
        lease = cache.lease(serialize_artifact(model, manifest))
        summary = cache.stats.summary()
        assert "1 leases (1 active)" in summary
        assert "0 races" in summary
        lease.release()
        assert "1 leases (0 active)" in cache.stats.summary()
