"""Tests for repro.serve.artifact: container, reconstruction, LRU cache."""

import numpy as np
import pytest

from repro.quant.export import ExportMismatchError, export_quantized_weights, verify_export
from repro.quant.packing import write_bitstream
from repro.quant.qmodules import quantized_layers
from repro.serve import (
    ArtifactCache,
    ArtifactManifest,
    artifact_from_search,
    compile_artifact,
    load_artifact,
    load_artifact_bytes,
    save_artifact,
    serialize_artifact,
)
from repro.tensor.tensor import Tensor, no_grad


@pytest.fixture
def quantized_mlp(quantized_mlp_factory):
    return quantized_mlp_factory()


class TestManifest:
    def test_round_trip(self):
        manifest = ArtifactManifest(
            model="mlp", dataset="synth100", scale="small", seed=3,
            num_classes=100, image_size=16, max_bits=4, act_bits=2,
            extra={"accuracy": 0.5},
        )
        restored = ArtifactManifest.from_dict(manifest.to_dict())
        assert restored == manifest

    def test_non_finite_extras_become_null(self):
        manifest = ArtifactManifest(model="mlp", extra={"bad": float("nan")})
        assert manifest.to_dict()["extra"]["bad"] is None

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            ArtifactManifest.from_dict({"model": "mlp", "frobnicate": 1})

    def test_input_shape(self):
        assert ArtifactManifest(model="mlp", image_size=8).input_shape == (3, 8, 8)


class TestContainer:
    def test_save_load_round_trip(self, quantized_mlp, tmp_path):
        model, manifest = quantized_mlp
        path = tmp_path / "model.cqw"
        written = save_artifact(path, model, manifest)
        assert path.stat().st_size == written
        artifact = load_artifact(path)
        assert artifact.manifest == manifest
        assert artifact.nbytes == written
        export = export_quantized_weights(model)
        assert set(artifact.export.layers) == set(export.layers)
        for name, layer in export.layers.items():
            for f in range(len(layer.bits_per_filter)):
                np.testing.assert_array_equal(
                    artifact.export.layers[name].codes[f], layer.codes[f]
                )

    def test_content_key_is_stable_and_content_based(self, quantized_mlp, tmp_path):
        model, manifest = quantized_mlp
        data = serialize_artifact(model, manifest)
        assert load_artifact_bytes(data).content_key == load_artifact_bytes(data).content_key
        (tmp_path / "a.cqw").write_bytes(data)
        (tmp_path / "b.cqw").write_bytes(data)
        assert (
            load_artifact(tmp_path / "a.cqw").content_key
            == load_artifact(tmp_path / "b.cqw").content_key
        )

    def test_compiled_artifact_saves_its_exact_bytes(self, quantized_mlp, tmp_path):
        model, manifest = quantized_mlp
        artifact = compile_artifact(model, manifest)
        path = tmp_path / "compiled.cqw"
        written = artifact.save(path)
        assert written == artifact.nbytes == path.stat().st_size
        assert load_artifact(path).content_key == artifact.content_key

    def test_bare_cqw1_without_sidecar_rejected(self, quantized_mlp, tmp_path):
        model, _manifest = quantized_mlp
        path = tmp_path / "bare.cqw"
        write_bitstream(export_quantized_weights(model), path)
        with pytest.raises(ValueError, match="sidecar"):
            load_artifact(path)

    def test_unknown_trailing_section_rejected(self, quantized_mlp):
        model, _manifest = quantized_mlp
        from repro.quant.packing import serialize_export

        data = serialize_export(export_quantized_weights(model)) + b"XXXX123"
        with pytest.raises(ValueError, match="CQS1"):
            load_artifact_bytes(data)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="CQW1"):
            load_artifact_bytes(b"NOPE" + b"\x00" * 16)

    def test_sidecar_excludes_quantized_weights(self, quantized_mlp):
        model, manifest = quantized_mlp
        artifact = compile_artifact(model, manifest)
        quantized = set(quantized_layers(model))
        for name in quantized:
            assert f"{name}.weight" not in artifact.state
            assert f"{name}.quant_bits" in artifact.state
        # Unquantized first/output layers ride along in full.
        assert any(key.endswith("fc0.weight") for key in artifact.state)


class TestServingModel:
    def test_weights_are_bit_exact_with_effective_weight(self, quantized_mlp):
        model, manifest = quantized_mlp
        serving = compile_artifact(model, manifest).model()
        reference = quantized_layers(model)
        for name, layer in quantized_layers(serving).items():
            assert layer.weight_quant_enabled is False
            np.testing.assert_array_equal(
                layer.weight.data, reference[name].effective_weight().data
            )

    def test_forward_parity_weights_only(self, quantized_mlp, rng):
        model, manifest = quantized_mlp
        serving = compile_artifact(model, manifest).model()
        batch = rng.standard_normal((6, 3, 8, 8))
        with no_grad():
            expected = model(Tensor(batch)).data
            got = serving(Tensor(batch)).data
        np.testing.assert_array_equal(got, expected)

    def test_forward_parity_with_quantized_activations(
        self, quantized_mlp_factory, rng
    ):
        model, manifest = quantized_mlp_factory(act_bits=2)
        serving = compile_artifact(model, manifest).model()
        batch = rng.standard_normal((6, 3, 8, 8))
        with no_grad():
            expected = model(Tensor(batch)).data
            got = serving(Tensor(batch)).data
        np.testing.assert_array_equal(got, expected)

    def test_model_is_built_once(self, quantized_mlp):
        model, manifest = quantized_mlp
        artifact = compile_artifact(model, manifest)
        assert artifact.model() is artifact.model()

    def test_artifact_from_search_bit_map(self, quantized_mlp_factory, rng):
        from repro.experiments.presets import build_preset_model
        from repro.quant.qmodules import extract_bit_map

        quantized, manifest = quantized_mlp_factory()
        float_model = build_preset_model(
            "mlp", num_classes=4, image_size=8, scale="tiny", seed=1
        )
        # Carry the float weights over so the arrangement is the only delta.
        state = {
            key: value
            for key, value in quantized.state_dict().items()
            if not (key.endswith("quant_bits") or key.endswith("act_range"))
        }
        float_model.load_state_dict(state, strict=False)
        artifact = artifact_from_search(
            float_model, extract_bit_map(quantized), manifest
        )
        batch = rng.standard_normal((4, 3, 8, 8))
        with no_grad():
            expected = quantized(Tensor(batch)).data
            got = artifact.model()(Tensor(batch)).data
        np.testing.assert_array_equal(got, expected)


class TestVerifyExportStrict:
    def test_strict_raises_with_layer_and_error(self, quantized_mlp):
        model, _manifest = quantized_mlp
        export = export_quantized_weights(model)
        name = next(iter(export.layers))
        # Corrupt one non-empty code array.
        layer = export.layers[name]
        victim = next(f for f, b in enumerate(layer.bits_per_filter) if int(b) > 0)
        layer.codes[victim] = layer.codes[victim] ^ 1
        assert verify_export(model, export) is False
        with pytest.raises(ExportMismatchError, match=name) as error:
            verify_export(model, export, strict=True)
        assert "max abs error" in str(error.value)

    def test_strict_passes_on_clean_export(self, quantized_mlp):
        model, _manifest = quantized_mlp
        assert verify_export(model, strict=True) is True

    def test_compile_runs_strict_verification(self, quantized_mlp, monkeypatch):
        model, manifest = quantized_mlp
        import repro.serve.artifact as artifact_module

        def broken_export(_model):
            export = export_quantized_weights(model)
            layer = next(iter(export.layers.values()))
            victim = next(
                f for f, b in enumerate(layer.bits_per_filter) if int(b) > 0
            )
            layer.codes[victim] = layer.codes[victim] ^ 1
            return export

        monkeypatch.setattr(
            artifact_module, "export_quantized_weights", broken_export
        )
        with pytest.raises(ExportMismatchError):
            compile_artifact(model, manifest)
        # verify=False skips the guard (the corruption ships).
        assert compile_artifact(model, manifest, verify=False) is not None


class TestArtifactCache:
    def test_hits_are_free_and_shared(self, quantized_mlp, tmp_path):
        model, manifest = quantized_mlp
        path = tmp_path / "model.cqw"
        save_artifact(path, model, manifest)
        cache = ArtifactCache(capacity=2)
        first = cache.load(path)
        second = cache.load(path)
        assert second is first
        assert second.model() is first.model()
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert "1 hits, 1 misses" in cache.stats.summary()

    def test_keyed_by_content_not_path(self, quantized_mlp, tmp_path):
        model, manifest = quantized_mlp
        data = serialize_artifact(model, manifest)
        (tmp_path / "a.cqw").write_bytes(data)
        (tmp_path / "b.cqw").write_bytes(data)
        cache = ArtifactCache()
        assert cache.load(tmp_path / "b.cqw") is cache.load(tmp_path / "a.cqw")
        assert cache.stats.hits == 1

    def test_lru_eviction(self, quantized_mlp_factory, tmp_path):
        cache = ArtifactCache(capacity=1)
        model_a, manifest_a = quantized_mlp_factory(bits_seed=0)
        model_b, manifest_b = quantized_mlp_factory(bits_seed=9)
        bytes_a = serialize_artifact(model_a, manifest_a)
        bytes_b = serialize_artifact(model_b, manifest_b)
        assert bytes_a != bytes_b
        first = cache.load_bytes(bytes_a)
        cache.load_bytes(bytes_b)
        assert cache.stats.evictions == 1
        assert cache.load_bytes(bytes_a) is not first  # rebuilt after eviction
        assert cache.stats.misses == 3 and cache.stats.hits == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ArtifactCache(capacity=0)

    def test_clear(self, quantized_mlp):
        model, manifest = quantized_mlp
        cache = ArtifactCache()
        cache.load_bytes(serialize_artifact(model, manifest))
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
