"""Integration tests for the end-to-end CQ pipeline (Sec. III)."""

import numpy as np
import pytest

from repro.core import CQConfig, ClassBasedQuantizer
from repro.core.distill import refine_quantized_model
from repro.data import ArrayDataset, DataLoader
from repro.quant.qmodules import quantized_layers
from repro.train import evaluate_model
from repro.utils import clone_module


@pytest.fixture(scope="module")
def cq_result(tiny_dataset, trained_mlp):
    config = CQConfig(
        target_avg_bits=2.0,
        max_bits=4,
        act_bits=2,
        step=0.5,
        samples_per_class=8,
        refine_epochs=6,
        refine_lr=0.01,
        refine_batch_size=25,
        search_batch_size=40,
    )
    return ClassBasedQuantizer(config).quantize(trained_mlp, tiny_dataset)


class TestPipelineEndToEnd:
    def test_budget_met(self, cq_result):
        assert cq_result.average_bits <= 2.0 + 1e-9

    def test_refinement_recovers_accuracy(self, cq_result):
        assert (
            cq_result.accuracy_after_refine >= cq_result.accuracy_before_refine - 0.05
        )

    def test_final_accuracy_reasonable(self, cq_result):
        """At 2.0 bits the refined model should stay within striking
        distance of the FP model on this easy dataset."""
        assert cq_result.accuracy_after_refine >= cq_result.accuracy_fp - 0.35

    def test_teacher_is_original_model(self, cq_result, trained_mlp):
        assert cq_result.teacher is trained_mlp

    def test_teacher_unmodified(self, cq_result, trained_mlp):
        """The pipeline must not convert or mutate the input model."""
        from repro.quant import QLinear

        assert not any(
            isinstance(module, QLinear) for module in trained_mlp.modules()
        )

    def test_student_has_quantized_layers(self, cq_result):
        layers = quantized_layers(cq_result.model)
        assert set(layers) == {"fc1", "fc2"}

    def test_bit_map_matches_student_layers(self, cq_result):
        layers = quantized_layers(cq_result.model)
        for name in cq_result.bit_map.layers():
            np.testing.assert_array_equal(
                layers[name].bits, cq_result.bit_map[name]
            )

    def test_importance_scores_in_class_range(self, cq_result, tiny_dataset):
        for gamma in cq_result.importance.neuron_scores.values():
            assert np.all(gamma >= 0)
            assert np.all(gamma <= tiny_dataset.num_classes + 1e-12)

    def test_search_trace_nonempty(self, cq_result):
        assert cq_result.search.evaluations > 0

    def test_refine_history_length(self, cq_result):
        assert len(cq_result.refine_history.train) == 6

    def test_activation_observers_calibrated(self, cq_result):
        for layer in quantized_layers(cq_result.model).values():
            assert layer.act_observer.initialized


class TestPipelineStages:
    def test_compute_importance_standalone(self, tiny_dataset, trained_mlp):
        quantizer = ClassBasedQuantizer(CQConfig(samples_per_class=4))
        importance = quantizer.compute_importance(trained_mlp, tiny_dataset)
        assert importance.num_classes == tiny_dataset.num_classes

    def test_search_standalone(self, tiny_dataset, trained_mlp):
        config = CQConfig(target_avg_bits=3.0, max_bits=4, step=0.5, samples_per_class=4)
        quantizer = ClassBasedQuantizer(config)
        importance = quantizer.compute_importance(trained_mlp, tiny_dataset)
        search = quantizer.search_bit_widths(trained_mlp, tiny_dataset, importance)
        assert search.average_bits <= 3.0 + 1e-9

    def test_build_quantized_model_applies_map(self, tiny_dataset, trained_mlp):
        config = CQConfig(target_avg_bits=2.0, max_bits=4, step=0.5,
                          samples_per_class=4, act_bits=2)
        quantizer = ClassBasedQuantizer(config)
        importance = quantizer.compute_importance(trained_mlp, tiny_dataset)
        search = quantizer.search_bit_widths(trained_mlp, tiny_dataset, importance)
        student = quantizer.build_quantized_model(trained_mlp, tiny_dataset, search.bit_map)
        layers = quantized_layers(student)
        for name in search.bit_map.layers():
            np.testing.assert_array_equal(layers[name].bits, search.bit_map[name])

    def test_explicit_taps(self, tiny_dataset, trained_mlp):
        quantizer = ClassBasedQuantizer(CQConfig(samples_per_class=4))
        taps = {"fc1": trained_mlp.relu1, "fc2": trained_mlp.relu2}
        importance = quantizer.compute_importance(trained_mlp, tiny_dataset, taps=taps)
        assert set(importance.neuron_scores) == {"fc1", "fc2"}

    def test_zero_refine_epochs_skips_training(self, tiny_dataset, trained_mlp):
        config = CQConfig(
            target_avg_bits=2.0, max_bits=4, step=0.5, samples_per_class=4,
            act_bits=None, refine_epochs=0,
        )
        result = ClassBasedQuantizer(config).quantize(trained_mlp, tiny_dataset)
        assert len(result.refine_history.train) == 0
        assert result.accuracy_after_refine == pytest.approx(
            result.accuracy_before_refine
        )


class TestRefinement:
    def test_refine_improves_over_no_refine(self, tiny_dataset, trained_mlp):
        """KD refinement should improve (or at least not hurt) a heavily
        quantized model."""
        config = CQConfig(
            target_avg_bits=1.5, max_bits=4, step=0.5, samples_per_class=4,
            act_bits=None, refine_epochs=8, refine_lr=0.01, refine_batch_size=25,
        )
        quantizer = ClassBasedQuantizer(config)
        importance = quantizer.compute_importance(trained_mlp, tiny_dataset)
        search = quantizer.search_bit_widths(trained_mlp, tiny_dataset, importance)
        student = quantizer.build_quantized_model(trained_mlp, tiny_dataset, search.bit_map)

        test_loader = DataLoader(
            ArrayDataset(tiny_dataset.test_images, tiny_dataset.test_labels),
            batch_size=40,
        )
        before = evaluate_model(student, test_loader).accuracy
        refine_quantized_model(
            student,
            teacher=trained_mlp,
            train_dataset=ArrayDataset(tiny_dataset.train_images, tiny_dataset.train_labels),
            val_dataset=None,
            config=config,
        )
        after = evaluate_model(student, test_loader).accuracy
        assert after >= before - 0.05

    def test_refine_keeps_bit_assignment(self, tiny_dataset, trained_mlp):
        """Training with STE must not change the bit-width arrangement."""
        config = CQConfig(
            target_avg_bits=2.0, max_bits=4, step=0.5, samples_per_class=4,
            act_bits=None, refine_epochs=3, refine_batch_size=25,
        )
        result = ClassBasedQuantizer(config).quantize(trained_mlp, tiny_dataset)
        layers = quantized_layers(result.model)
        for name in result.bit_map.layers():
            np.testing.assert_array_equal(layers[name].bits, result.bit_map[name])

    def test_quantized_weights_on_grid_after_refine(self, cq_result):
        """effective_weight() must stay on the per-filter quantization grid
        even after SGD updates of the latent weights."""
        from repro.quant.uniform import UniformQuantizer

        for layer in quantized_layers(cq_result.model).values():
            effective = layer.effective_weight().data
            quantizer = UniformQuantizer.for_weights(layer.weight.data)
            for f in range(layer.num_filters):
                bits = int(layer.bits[f])
                grid = quantizer.grid(bits)
                distances = np.abs(
                    effective[f].reshape(-1, 1) - grid.reshape(1, -1)
                ).min(axis=1)
                assert np.all(distances < 1e-9)
