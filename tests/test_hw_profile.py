"""Tests for repro.hw.profile: MAC/parameter/shape tracing."""

import numpy as np
import pytest

from repro.hw.profile import profile_model
from repro.models.mlp import MLP
from repro.models.vgg import VGGSmall
from repro.nn import Conv2d, Linear, Module, ReLU, Sequential
from repro.quant.qmodules import quantize_model
from repro.tensor.tensor import Tensor


@pytest.fixture(scope="module")
def vgg_profile():
    model = VGGSmall(num_classes=4, image_size=8, width=8, rng=np.random.default_rng(0))
    return model, profile_model(model, (3, 8, 8))


class TestLinearProfiling:
    def test_linear_macs_equal_weight_count(self):
        model = MLP(in_features=12, hidden=(8, 6), num_classes=3, rng=np.random.default_rng(0))
        profile = profile_model(model, (12,))
        for name in profile:
            layer = profile[name]
            assert layer.kind == "linear"
            assert layer.macs == layer.params

    def test_mlp_layer_shapes(self):
        model = MLP(in_features=12, hidden=(8, 6), num_classes=3, rng=np.random.default_rng(0))
        profile = profile_model(model, (12,))
        shapes = [profile[name].output_shape for name in profile]
        assert shapes == [(8,), (6,), (3,)]

    def test_weights_per_filter_is_in_features(self):
        model = MLP(in_features=12, hidden=(8, 6), num_classes=3, rng=np.random.default_rng(0))
        profile = profile_model(model, (12,))
        first = profile[profile.layers()[0]]
        assert first.weights_per_filter == 12
        assert first.num_filters == 8


class TestConvProfiling:
    def test_conv_mac_formula(self):
        class Wrapper(Module):
            def __init__(self):
                super().__init__()
                self.conv = Conv2d(3, 5, 3, stride=1, padding=1, rng=np.random.default_rng(0))
                self.fc = Linear(5 * 6 * 6, 2, rng=np.random.default_rng(1))

            def forward(self, x):
                out = self.conv(x).relu()
                return self.fc(out.flatten())

        model = Wrapper()
        profile = profile_model(model, (3, 6, 6))
        conv_profile = profile["conv"]
        # padding=1, stride=1 keeps 6x6; MACs = 6*6*5 out elems * 3*3*3.
        assert conv_profile.output_shape == (5, 6, 6)
        assert conv_profile.macs == 6 * 6 * 5 * 3 * 3 * 3
        assert conv_profile.macs_per_filter == 6 * 6 * 3 * 3 * 3
        assert conv_profile.params == 5 * 3 * 3 * 3

    def test_strided_conv_shrinks_output(self):
        class Strided(Module):
            def __init__(self):
                super().__init__()
                self.conv = Conv2d(3, 4, 3, stride=2, padding=1, rng=np.random.default_rng(0))
                self.fc = Linear(4 * 16, 2, rng=np.random.default_rng(1))

            def forward(self, x):
                return self.fc(self.conv(x).flatten())

        profile = profile_model(Strided(), (3, 8, 8))
        assert profile["conv"].output_shape == (4, 4, 4)

    def test_vgg_total_params_match_weight_sizes(self, vgg_profile):
        model, profile = vgg_profile
        expected = sum(
            module.weight.size
            for name, module in model.named_modules()
            if isinstance(module, (Conv2d, Linear)) and name
        )
        assert profile.total_params == expected

    def test_conv_dominates_vgg_macs(self, vgg_profile):
        _, profile = vgg_profile
        conv_macs = sum(p.macs for p in profile.profiles() if p.kind == "conv")
        assert conv_macs > profile.total_macs / 2


class TestModelProfileContainer:
    def test_iteration_follows_forward_order(self, vgg_profile):
        model, profile = vgg_profile
        # First profiled layer must be the first conv.
        first = profile[profile.layers()[0]]
        assert first.kind == "conv"
        # Last must be the classifier head.
        last = profile[profile.layers()[-1]]
        assert last.kind == "linear"
        assert last.output_shape == (4,)

    def test_subset_preserves_order_and_totals(self, vgg_profile):
        _, profile = vgg_profile
        names = profile.layers()[1:-1]
        sub = profile.subset(names)
        assert sub.layers() == names
        assert sub.total_macs == sum(profile[n].macs for n in names)

    def test_subset_unknown_layer_raises(self, vgg_profile):
        _, profile = vgg_profile
        with pytest.raises(KeyError):
            profile.subset(("nonexistent",))

    def test_contains_and_len(self, vgg_profile):
        _, profile = vgg_profile
        assert len(profile) == len(profile.layers())
        assert profile.layers()[0] in profile
        assert "missing" not in profile

    def test_profile_deterministic(self):
        model = MLP(in_features=10, hidden=(6, 4), num_classes=2, rng=np.random.default_rng(0))
        p1 = profile_model(model, (10,))
        p2 = profile_model(model, (10,))
        assert p1.total_macs == p2.total_macs
        assert p1.layers() == p2.layers()

    def test_model_without_weight_layers_raises(self):
        with pytest.raises(ValueError, match="no Conv2d/Linear"):
            profile_model(Sequential(ReLU()), (4,))

    def test_profiling_restores_training_mode(self):
        model = MLP(in_features=10, hidden=(6, 4), num_classes=2, rng=np.random.default_rng(0))
        model.train()
        profile_model(model, (10,))
        assert model.training
        model.eval()
        profile_model(model, (10,))
        assert not model.training


class TestQuantizedModelProfiling:
    def test_quantized_model_profiles_identically(self, vgg_profile):
        _, float_profile = vgg_profile
        model = VGGSmall(num_classes=4, image_size=8, width=8, rng=np.random.default_rng(0))
        quantize_model(model, max_bits=4, act_bits=4)
        q_profile = profile_model(model, (3, 8, 8))
        assert q_profile.layers() == float_profile.layers()
        assert q_profile.total_macs == float_profile.total_macs
        assert q_profile.total_params == float_profile.total_params

    def test_weight_sharing_accumulates_calls(self):
        class SharedTwice(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(6, 6, rng=np.random.default_rng(0))
                self.head = Linear(6, 2, rng=np.random.default_rng(1))

            def forward(self, x):
                return self.head(self.fc(self.fc(x)))

        profile = profile_model(SharedTwice(), (6,))
        shared = profile["fc"]
        assert shared.calls == 2
        assert shared.macs == 2 * 6 * 6
