"""Hypothesis property tests for the threshold search: for arbitrary
score landscapes and evaluator behaviours, the invariants the rest of
the pipeline depends on must hold."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.config import CQConfig
from repro.core.search import BitWidthSearch, assign_bits

score_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(2, 40),
    elements=st.floats(0.0, 10.0, allow_nan=False),
)


def run_search(scores, budget, accuracy_fn, max_bits=4):
    config = CQConfig(
        target_avg_bits=budget, max_bits=max_bits, step=None, t1=0.5,
    )
    return BitWidthSearch(
        {"layer": scores}, {"layer": 7}, accuracy_fn, config
    ).run()


class TestSearchInvariants:
    @given(scores=score_arrays, budget=st.floats(0.0, 4.0))
    @settings(max_examples=40, deadline=None)
    def test_budget_always_met_with_constant_evaluator(self, scores, budget):
        result = run_search(scores, budget, lambda bits: 1.0)
        assert result.average_bits <= budget + 1e-9

    @given(scores=score_arrays, budget=st.floats(0.0, 4.0))
    @settings(max_examples=40, deadline=None)
    def test_budget_met_with_zero_evaluator(self, scores, budget):
        result = run_search(scores, budget, lambda bits: 0.0)
        assert result.average_bits <= budget + 1e-9

    @given(
        scores=score_arrays,
        budget=st.floats(0.5, 3.5),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_budget_met_with_random_evaluator(self, scores, budget, seed):
        rng = np.random.default_rng(seed)
        result = run_search(scores, budget, lambda bits: float(rng.random()))
        assert result.average_bits <= budget + 1e-9

    @given(scores=score_arrays, budget=st.floats(0.0, 4.0))
    @settings(max_examples=40, deadline=None)
    def test_thresholds_sorted(self, scores, budget):
        result = run_search(scores, budget, lambda bits: 0.7)
        assert np.all(np.diff(result.thresholds) >= -1e-12)

    @given(scores=score_arrays, budget=st.floats(0.0, 4.0))
    @settings(max_examples=40, deadline=None)
    def test_bits_monotone_in_scores(self, scores, budget):
        """Higher-scored filters never receive fewer bits."""
        result = run_search(scores, budget, lambda bits: 0.7)
        bits = result.bit_map["layer"]
        order = np.argsort(scores)
        sorted_bits = bits[order]
        assert np.all(np.diff(sorted_bits) >= 0)

    @given(scores=score_arrays)
    @settings(max_examples=40, deadline=None)
    def test_assignment_consistent_with_thresholds(self, scores):
        result = run_search(scores, 2.0, lambda bits: 0.6)
        recomputed = assign_bits({"layer": scores}, result.thresholds)["layer"]
        np.testing.assert_array_equal(result.bit_map["layer"], recomputed)

    @given(scores=score_arrays, budget=st.floats(0.0, 4.0))
    @settings(max_examples=40, deadline=None)
    def test_bits_within_range(self, scores, budget):
        result = run_search(scores, budget, lambda bits: 0.5)
        bits = result.bit_map["layer"]
        assert np.all(bits >= 0) and np.all(bits <= 4)

    @given(scores=score_arrays)
    @settings(max_examples=20, deadline=None)
    def test_full_budget_keeps_everything_at_max(self, scores):
        result = run_search(scores, 4.0, lambda bits: 1.0)
        np.testing.assert_array_equal(
            result.bit_map["layer"], np.full(len(scores), 4)
        )

    @given(
        scores=score_arrays,
        budget=st.floats(0.0, 4.0),
        seed=st.integers(0, 100),
        t1_relative=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_step_thresholds_non_decreasing(self, scores, budget, seed, t1_relative):
        """A threshold only ever moves up: per ``k``, the recorded step
        positions are non-decreasing across the whole run (Phase 1 raises
        each ``p_k`` in turn; Phase 2 continues raising, never lowers)."""
        rng = np.random.default_rng(seed)
        config = CQConfig(
            target_avg_bits=budget, max_bits=4, t1=0.5, t1_relative=t1_relative
        )
        result = BitWidthSearch(
            {"layer": scores}, {"layer": 7}, lambda bits: float(rng.random()), config
        ).run()
        last_position = {}
        for step in result.steps:
            assert step.threshold >= last_position.get(step.k, 0.0) - 1e-12
            last_position[step.k] = step.threshold

    @given(
        scores=score_arrays,
        budget=st.floats(0.0, 4.0),
        seed=st.integers(0, 100),
        t1_relative=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_evaluations_match_recorded_steps(self, scores, budget, seed, t1_relative):
        """Every evaluation is accounted for: one per recorded step, plus
        the ``t1_relative`` baseline evaluation, plus one final fill-in
        when the search ended without ever evaluating (budget already met
        at the start and no baseline was taken)."""
        rng = np.random.default_rng(seed)
        config = CQConfig(
            target_avg_bits=budget, max_bits=4, t1=0.5, t1_relative=t1_relative
        )
        result = BitWidthSearch(
            {"layer": scores}, {"layer": 7}, lambda bits: float(rng.random()), config
        ).run()
        expected = len(result.steps)
        if t1_relative:
            expected += 1
        elif not result.steps:
            expected += 1  # final evaluation of the untouched thresholds
        assert result.evaluations == expected

    @given(
        scores=score_arrays,
        budget=st.floats(0.5, 3.5),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_budget_met_unless_squeeze_saturated(self, scores, budget, seed):
        """Whenever Phase 2 ran to completion (``p_1`` did not saturate at
        the top of the score axis), the final average bit-width meets the
        budget — for arbitrary evaluator behaviour."""
        rng = np.random.default_rng(seed)
        result = run_search(scores, budget, lambda bits: float(rng.random()))
        max_score = float(np.max(scores))
        if result.thresholds[0] < max_score:
            assert result.average_bits <= budget + 1e-9

    @given(
        scores=score_arrays,
        budget=st.floats(0.5, 3.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_evaluation_count_bounded(self, scores, budget):
        """Auto step bounds the number of accuracy evaluations regardless
        of the score landscape (the paper's efficiency claim)."""
        counter = {"n": 0}

        def evaluator(bits):
            counter["n"] += 1
            return 0.6

        run_search(scores, budget, evaluator)
        # <= 2 phases x 4 thresholds x ~41 positions + baseline + final
        assert counter["n"] <= 2 * 4 * 42 + 2
