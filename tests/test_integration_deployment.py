"""Cross-module integration: CQ pipeline -> checkpoint -> integer engine.

The full deployment story must hold together: an arrangement produced by
the search survives a checkpoint round-trip with its quantization state,
and the restored model executes identically under integer-only MACs and
on the hardware cost model.
"""

import numpy as np
import pytest

from repro.core.config import CQConfig
from repro.core.pipeline import ClassBasedQuantizer
from repro.hw import cost_summary, profile_model
from repro.models.mlp import MLP
from repro.quant.export import export_quantized_weights, verify_export
from repro.quant.integer import verify_integer_equivalence
from repro.quant.qmodules import extract_bit_map, quantize_model
from repro.utils.checkpoint import load_checkpoint, save_checkpoint

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def cq_result(trained_mlp, tiny_dataset):
    config = CQConfig(
        target_avg_bits=2.0,
        max_bits=4,
        act_bits=3,
        samples_per_class=8,
        refine_epochs=3,
        refine_lr=0.01,
        refine_batch_size=25,
        seed=0,
    )
    return ClassBasedQuantizer(config).quantize(trained_mlp, tiny_dataset)


class TestDeploymentRoundTrip:
    def test_export_is_bit_exact(self, cq_result):
        assert verify_export(cq_result.model)

    def test_integer_equivalence_after_pipeline(self, cq_result, tiny_dataset):
        ok, diff = verify_integer_equivalence(
            cq_result.model, tiny_dataset.test_images[:32]
        )
        assert ok, f"integer execution diverged by {diff}"

    def test_checkpoint_preserves_arrangement_and_integer_path(
        self, cq_result, tiny_dataset, tmp_path
    ):
        path = tmp_path / "deployed.npz"
        save_checkpoint(
            cq_result.model, path, metadata={"bit_map": cq_result.bit_map.to_dict()}
        )

        restored = MLP(
            in_features=3 * 8 * 8,
            hidden=(32, 24, 16),
            num_classes=tiny_dataset.num_classes,
            rng=np.random.default_rng(99),
        )
        quantize_model(restored, max_bits=4, act_bits=3)
        metadata = load_checkpoint(restored, path)
        assert "bit_map" in metadata

        # Same arrangement...
        restored_map = extract_bit_map(restored)
        for name in cq_result.bit_map:
            np.testing.assert_array_equal(
                restored_map[name], cq_result.bit_map[name]
            )
        # ...same outputs...
        sample = tiny_dataset.test_images[:16]
        from repro.tensor.tensor import Tensor, no_grad

        cq_result.model.eval()
        restored.eval()
        with no_grad():
            expected = cq_result.model(Tensor(sample)).data
            actual = restored(Tensor(sample)).data
        np.testing.assert_allclose(actual, expected, atol=1e-10)
        # ...and the restored model still runs integer-exact.
        ok, diff = verify_integer_equivalence(restored, sample)
        assert ok, f"restored model integer path diverged by {diff}"

    def test_cost_model_consistent_with_export(self, cq_result):
        profile = profile_model(cq_result.model, (3 * 8 * 8,))
        summary = cost_summary(profile, cq_result.bit_map, act_bits=3)
        export = export_quantized_weights(cq_result.model)
        # Storage accounting must agree: cost_summary counts code bits
        # only; the export adds scale/bit-width metadata on top.
        assert summary.storage_kib * 8 * 1024 == pytest.approx(
            sum(layer.payload_bits for layer in export.layers.values())
        )

    def test_compression_reflects_budget(self, cq_result):
        export = export_quantized_weights(cq_result.model)
        # The pure code payload compresses by exactly 32 / average bits;
        # the reported ratio also pays the per-layer metadata (scale pair
        # + one bit-width byte per filter) and must stay within it.
        fp_bits = sum(
            32 * np.prod(layer.weight_shape) for layer in export.layers.values()
        )
        payload_bits = sum(layer.payload_bits for layer in export.layers.values())
        assert fp_bits / payload_bits == pytest.approx(
            32.0 / cq_result.average_bits, rel=1e-9
        )
        assert export.compression_ratio() <= fp_bits / payload_bits
