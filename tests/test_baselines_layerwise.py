"""Tests for the layer-wise mixed-precision baseline (HAQ granularity)."""

import numpy as np
import pytest

from repro.baselines.layerwise import (
    LayerwiseConfig,
    search_layerwise_bits,
    train_layerwise_baseline,
)
from repro.core.config import CQConfig


class TestLayerwiseConfig:
    def test_defaults_valid(self):
        config = LayerwiseConfig()
        assert config.method == "greedy"

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            LayerwiseConfig(method="rl")

    def test_inconsistent_bit_bounds_rejected(self):
        with pytest.raises(ValueError, match="min_bits"):
            LayerwiseConfig(min_bits=5, max_bits=4)

    def test_unreachable_budget_rejected(self):
        with pytest.raises(ValueError, match="unreachable"):
            LayerwiseConfig(target_avg_bits=0.5, min_bits=1)


class TestGreedySearch:
    @pytest.fixture(scope="class")
    def search_result(self, trained_mlp, tiny_dataset):
        config = LayerwiseConfig(target_avg_bits=2.0, max_bits=4, method="greedy")
        return search_layerwise_bits(trained_mlp, tiny_dataset, config)

    def test_budget_met(self, search_result):
        assert search_result.average_bits <= 2.0 + 1e-9

    def test_one_width_per_layer(self, search_result):
        for name, bits in search_result.layer_bits.items():
            per_filter = search_result.bit_map[name]
            assert (per_filter == bits).all(), f"layer {name} is not uniform"

    def test_bits_within_bounds(self, search_result):
        for bits in search_result.layer_bits.values():
            assert 1 <= bits <= 4

    def test_search_evaluated_candidates(self, search_result):
        # Greedy evaluates every demotion candidate per round: more
        # evaluations than layers.
        assert search_result.evaluations > len(search_result.layer_bits)

    def test_accuracy_is_probability(self, search_result):
        assert 0.0 <= search_result.search_accuracy <= 1.0


class TestAnnealSearch:
    def test_budget_met_and_reproducible(self, trained_mlp, tiny_dataset):
        config = LayerwiseConfig(
            target_avg_bits=2.0,
            max_bits=4,
            method="anneal",
            anneal_iterations=30,
            seed=11,
        )
        first = search_layerwise_bits(trained_mlp, tiny_dataset, config)
        second = search_layerwise_bits(trained_mlp, tiny_dataset, config)
        assert first.average_bits <= 2.0 + 1e-9
        assert first.layer_bits == second.layer_bits

    def test_anneal_no_worse_than_feasible_start(self, trained_mlp, tiny_dataset):
        config = LayerwiseConfig(
            target_avg_bits=2.0, max_bits=4, method="anneal", anneal_iterations=40
        )
        result = search_layerwise_bits(trained_mlp, tiny_dataset, config)
        # Annealing keeps the best-seen assignment, so the reported
        # accuracy can never be below a 1-bit-everywhere floor of 0.
        assert result.search_accuracy >= 0.0
        assert result.average_bits <= 2.0 + 1e-9


class TestTrainLayerwiseBaseline:
    @pytest.fixture(scope="class")
    def baseline(self, trained_mlp, tiny_dataset):
        config = LayerwiseConfig(target_avg_bits=2.0, max_bits=4, act_bits=4)
        cq_config = CQConfig(refine_epochs=4, refine_lr=0.01, refine_batch_size=25)
        return train_layerwise_baseline(trained_mlp, tiny_dataset, config, cq_config)

    def test_model_carries_searched_bits(self, baseline):
        from repro.quant.qmodules import extract_bit_map

        applied = extract_bit_map(baseline.model)
        for name in baseline.search.bit_map:
            np.testing.assert_array_equal(
                applied[name], baseline.search.bit_map[name]
            )

    def test_refinement_recovers_accuracy(self, baseline):
        assert (
            baseline.accuracy_after_refine >= baseline.accuracy_before_refine - 0.05
        )

    def test_original_model_untouched(self, trained_mlp, baseline):
        from repro.quant.qmodules import quantized_layers

        assert not quantized_layers(trained_mlp)

    def test_skip_refine(self, trained_mlp, tiny_dataset):
        config = LayerwiseConfig(target_avg_bits=3.0, max_bits=4)
        cq_config = CQConfig(refine_epochs=0)
        result = train_layerwise_baseline(trained_mlp, tiny_dataset, config, cq_config)
        assert result.accuracy_after_refine == result.accuracy_before_refine
        assert not result.refine_history.train


class TestBudgetProperty:
    """The layer-wise search must satisfy any reachable budget."""

    @pytest.mark.parametrize("budget", [1.0, 1.7, 2.5, 3.9])
    def test_any_budget_met(self, trained_mlp, tiny_dataset, budget):
        config = LayerwiseConfig(target_avg_bits=budget, max_bits=4, min_bits=1)
        result = search_layerwise_bits(trained_mlp, tiny_dataset, config)
        assert result.average_bits <= budget + 1e-9

    def test_min_bits_floor_respected_even_if_budget_missed(
        self, trained_mlp, tiny_dataset
    ):
        # min_bits=2 with budget 2.0: the only feasible assignment is
        # everything at exactly 2 bits.
        config = LayerwiseConfig(target_avg_bits=2.0, max_bits=4, min_bits=2)
        result = search_layerwise_bits(trained_mlp, tiny_dataset, config)
        assert all(bits >= 2 for bits in result.layer_bits.values())
        assert result.average_bits <= 2.0 + 1e-9
