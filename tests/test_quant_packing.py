"""Tests for repro.quant.packing: bit packing and bitstream round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.export import LayerExport, QuantizedExport, export_quantized_weights
from repro.quant.packing import (
    deserialize_export,
    pack_bits,
    read_bitstream,
    serialize_export,
    unpack_bits,
    write_bitstream,
)
from repro.quant.qmodules import QLinear, quantize_model
from repro.models.vgg import VGGSmall


class TestPackUnpack:
    def test_round_trip_known_values(self):
        codes = np.array([5, 0, 7, 2, 1])
        packed = pack_bits(codes, bits=3)
        assert packed.size == 2  # 15 bits -> 2 bytes
        np.testing.assert_array_equal(unpack_bits(packed, 3, 5), codes)

    def test_single_bit_packing(self):
        codes = np.array([1, 0, 1, 1, 0, 0, 1, 0, 1])
        packed = pack_bits(codes, bits=1)
        assert packed.size == 2
        np.testing.assert_array_equal(unpack_bits(packed, 1, 9), codes)

    def test_lsb_first_layout(self):
        # Codes [1, 1] at 1 bit: bits 0 and 1 of the first byte.
        packed = pack_bits(np.array([1, 1]), bits=1)
        assert packed[0] == 0b11

    def test_zero_bits_empty(self):
        assert pack_bits(np.array([0, 0]), bits=0).size == 0
        np.testing.assert_array_equal(unpack_bits(np.zeros(0, np.uint8), 0, 4), 0)

    def test_code_overflow_rejected(self):
        with pytest.raises(ValueError, match="exceed"):
            pack_bits(np.array([8]), bits=3)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([1]), bits=-1)
        with pytest.raises(ValueError):
            unpack_bits(np.zeros(1, np.uint8), -1, 1)

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError, match="bits"):
            unpack_bits(np.zeros(1, dtype=np.uint8), bits=4, count=3)

    @given(
        bits=st.integers(min_value=1, max_value=12),
        codes=st.lists(st.integers(min_value=0, max_value=2**12 - 1), min_size=0, max_size=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, bits, codes):
        codes = np.array([c % (2**bits) for c in codes], dtype=np.int64)
        packed = pack_bits(codes, bits)
        assert packed.size == (codes.size * bits + 7) // 8
        np.testing.assert_array_equal(unpack_bits(packed, bits, codes.size), codes)


@pytest.fixture(scope="module")
def vgg_export():
    model = VGGSmall(num_classes=4, image_size=8, width=8, rng=np.random.default_rng(0))
    quantize_model(model, max_bits=4)
    # A mixed arrangement incl. pruned filters.
    for layer in model.modules():
        if hasattr(layer, "set_bits") and hasattr(layer, "num_filters"):
            rng = np.random.default_rng(layer.num_filters)
            layer.set_bits(rng.integers(0, 5, size=layer.num_filters))
    return model, export_quantized_weights(model)


class TestBitstreamRoundTrip:
    def test_serialize_deserialize_identical_codes(self, vgg_export):
        _model, export = vgg_export
        restored = deserialize_export(serialize_export(export))
        assert set(restored.layers) == set(export.layers)
        for name, layer in export.layers.items():
            other = restored.layers[name]
            assert other.weight_shape == layer.weight_shape
            assert other.lower == layer.lower and other.upper == layer.upper
            np.testing.assert_array_equal(other.bits_per_filter, layer.bits_per_filter)
            for f in range(len(layer.bits_per_filter)):
                np.testing.assert_array_equal(other.codes[f], layer.codes[f])

    def test_reconstruction_bit_exact_after_round_trip(self, vgg_export):
        _model, export = vgg_export
        restored = deserialize_export(serialize_export(export))
        for name, layer in export.layers.items():
            np.testing.assert_array_equal(
                restored.layers[name].reconstruct(), layer.reconstruct()
            )

    def test_file_round_trip(self, vgg_export, tmp_path):
        _model, export = vgg_export
        path = tmp_path / "model.cqw"
        written = write_bitstream(export, path)
        assert path.stat().st_size == written
        restored = read_bitstream(path)
        assert set(restored.layers) == set(export.layers)

    def test_file_size_matches_claimed_bits(self, vgg_export, tmp_path):
        """The storage claim is physical: the file is payload + headers +
        at most one byte of padding per stored filter."""
        _model, export = vgg_export
        path = tmp_path / "model.cqw"
        written_bits = write_bitstream(export, path) * 8
        claimed = export.quantized_payload_bits
        stored_filters = sum(
            int((layer.bits_per_filter > 0).sum()) for layer in export.layers.values()
        )
        header_slack = 8 * (8 + sum(
            2 + len(layer.name) + 1 + 4 * len(layer.weight_shape) + 8
            for layer in export.layers.values()
        ))
        assert written_bits >= claimed - 8 * 2 * 64 * len(export.layers)
        assert written_bits <= claimed + 8 * stored_filters + header_slack

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="CQW1"):
            deserialize_export(b"XXXX\x00\x00\x00\x00")

    def test_truncated_stream_rejected(self, vgg_export):
        _model, export = vgg_export
        data = serialize_export(export)
        with pytest.raises(ValueError, match="truncated"):
            deserialize_export(data[: len(data) // 2])


def _layer_round_trip(layer: LayerExport) -> LayerExport:
    export = QuantizedExport()
    export.layers[layer.name] = layer
    restored = deserialize_export(serialize_export(export))
    return restored.layers[layer.name]


class TestBitstreamEdgeCases:
    """Property-style round trips over the format's awkward corners:
    mixed bit widths 1-8 with 0-bit pruned filters, non-byte-aligned
    per-filter payloads, and single-filter layers."""

    @given(
        bits_per_filter=st.lists(
            st.integers(min_value=0, max_value=8), min_size=1, max_size=12
        ),
        per_filter=st.integers(min_value=1, max_value=11),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_mixed_width_round_trip_property(self, bits_per_filter, per_filter, seed):
        # per_filter values like 3/5/7/9/11 at odd widths make almost
        # every filter payload end mid-byte (non-byte-aligned).
        rng = np.random.default_rng(seed)
        bits = np.asarray(bits_per_filter, dtype=np.int64)
        codes = [
            rng.integers(0, 2 ** b, size=per_filter).astype(np.int64)
            if b > 0
            else np.zeros(0, dtype=np.int64)
            for b in bits
        ]
        layer = LayerExport(
            name="layer",
            lower=-1.25,
            upper=1.25,
            bits_per_filter=bits,
            codes=codes,
            weight_shape=(len(bits), per_filter),
        )
        restored = _layer_round_trip(layer)
        np.testing.assert_array_equal(restored.bits_per_filter, bits)
        for f in range(len(bits)):
            np.testing.assert_array_equal(restored.codes[f], codes[f])
        np.testing.assert_array_equal(restored.reconstruct(), layer.reconstruct())

    def test_single_filter_layer(self):
        layer = LayerExport(
            name="single",
            lower=-0.5,
            upper=0.5,
            bits_per_filter=np.array([5], dtype=np.int64),
            codes=[np.array([0, 31, 17], dtype=np.int64)],
            weight_shape=(1, 3),
        )
        restored = _layer_round_trip(layer)
        np.testing.assert_array_equal(restored.codes[0], layer.codes[0])
        assert restored.weight_shape == (1, 3)

    def test_single_filter_pruned_layer(self):
        layer = LayerExport(
            name="pruned",
            lower=-0.5,
            upper=0.5,
            bits_per_filter=np.array([0], dtype=np.int64),
            codes=[np.zeros(0, dtype=np.int64)],
            weight_shape=(1, 4),
        )
        restored = _layer_round_trip(layer)
        assert restored.codes[0].size == 0
        np.testing.assert_array_equal(restored.reconstruct(), 0.0)

    def test_non_byte_aligned_payload_is_padded_per_filter(self):
        # 3 codes x 3 bits = 9 bits -> 2 bytes per filter; the second
        # filter must start on the next byte boundary.
        bits = np.array([3, 3], dtype=np.int64)
        codes = [np.array([7, 0, 5]), np.array([1, 2, 3])]
        layer = LayerExport(
            name="odd",
            lower=-1.0,
            upper=1.0,
            bits_per_filter=bits,
            codes=[c.astype(np.int64) for c in codes],
            weight_shape=(2, 3),
        )
        restored = _layer_round_trip(layer)
        for f in range(2):
            np.testing.assert_array_equal(restored.codes[f], codes[f])

    def test_above_model_max_bits_round_trip(self):
        # The frame format is independent of any model's max_bits=4:
        # 8-bit codes (the satellite's upper end) survive untouched.
        codes = np.arange(256, dtype=np.int64)
        layer = LayerExport(
            name="wide",
            lower=-2.0,
            upper=2.0,
            bits_per_filter=np.array([8], dtype=np.int64),
            codes=[codes],
            weight_shape=(1, 256),
        )
        restored = _layer_round_trip(layer)
        np.testing.assert_array_equal(restored.codes[0], codes)


class TestReconstructionContract:
    def test_reconstruct_is_bit_exact_with_effective_weight(self, vgg_export):
        """Stronger than allclose: serving depends on exact equality."""
        model, export = vgg_export
        from repro.quant.qmodules import quantized_layers

        layers = quantized_layers(model)
        for name, layer_export in export.layers.items():
            np.testing.assert_array_equal(
                layer_export.reconstruct(), layers[name].effective_weight().data
            )


class TestPrunedFilters:
    def test_fully_pruned_layer_stores_nothing(self):
        rng = np.random.default_rng(0)
        layer = QLinear(6, 4, max_bits=4, rng=rng)
        layer.weight.data[...] = rng.standard_normal((4, 6))

        from repro.nn.module import Module

        class Holder(Module):
            def __init__(self):
                super().__init__()
                self.first = QLinear(6, 6, max_bits=4, rng=rng)
                self.mid = layer
                self.last = QLinear(4, 2, max_bits=4, rng=rng)

            def forward(self, x):
                return self.last(self.mid(self.first(x)))

        model = Holder()
        layer.set_bits(np.zeros(4, dtype=np.int64))
        export = export_quantized_weights(model)
        restored = deserialize_export(serialize_export(export))
        mid = restored.layers["mid"]
        assert all(code.size == 0 for code in mid.codes)
        np.testing.assert_array_equal(mid.reconstruct(), 0.0)
