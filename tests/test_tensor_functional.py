"""Tests for conv/pool/softmax functional ops, including adjointness of
im2col/col2im and agreement with scipy reference implementations."""

import numpy as np
import pytest
import scipy.signal

from repro.tensor import Tensor
from repro.tensor import functional as F
from repro.tensor.functional import col2im, conv_output_size, im2col
from tests.conftest import finite_difference


def check_grad(build_loss, *params, atol=1e-6):
    loss = build_loss()
    loss.backward()
    for param in params:
        expected = finite_difference(param.data, lambda: float(build_loss().data))
        np.testing.assert_allclose(param.grad, expected, atol=atol)


class TestIm2col:
    def test_output_size_formula(self):
        assert conv_output_size(8, 3, 1, 1) == 8
        assert conv_output_size(8, 3, 2, 1) == 4
        assert conv_output_size(7, 3, 1, 0) == 5

    def test_output_size_invalid_raises(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)

    def test_im2col_shape(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        cols = im2col(x, (3, 3), (1, 1), (1, 1))
        assert cols.shape == (2, 27, 64)

    def test_im2col_identity_kernel(self, rng):
        x = rng.standard_normal((1, 2, 4, 4))
        cols = im2col(x, (1, 1), (1, 1), (0, 0))
        np.testing.assert_allclose(cols.reshape(1, 2, 4, 4), x)

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        shape = (2, 3, 6, 6)
        kernel, stride, padding = (3, 3), (2, 2), (1, 1)
        x = rng.standard_normal(shape)
        cols = im2col(x, kernel, stride, padding)
        y = rng.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, shape, kernel, stride, padding)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_col2im_counts_overlaps(self):
        x = np.ones((1, 1, 3, 3))
        cols = im2col(x, (2, 2), (1, 1), (0, 0))
        back = col2im(cols, (1, 1, 3, 3), (2, 2), (1, 1), (0, 0))
        # centre pixel participates in all four 2x2 windows
        assert back[0, 0, 1, 1] == 4.0
        assert back[0, 0, 0, 0] == 1.0


class TestConv2d:
    def test_matches_scipy_correlate(self, rng):
        x = rng.standard_normal((1, 1, 8, 8))
        w = rng.standard_normal((1, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), stride=1, padding=0)
        ref = scipy.signal.correlate2d(x[0, 0], w[0, 0], mode="valid")
        np.testing.assert_allclose(out.data[0, 0], ref, atol=1e-10)

    def test_multichannel_sums_channels(self, rng):
        x = rng.standard_normal((1, 3, 6, 6))
        w = rng.standard_normal((2, 3, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w))
        ref = np.zeros((2, 4, 4))
        for f in range(2):
            for c in range(3):
                ref[f] += scipy.signal.correlate2d(x[0, c], w[f, c], mode="valid")
        np.testing.assert_allclose(out.data[0], ref, atol=1e-10)

    def test_stride_two_shape(self, rng):
        out = F.conv2d(
            Tensor(rng.standard_normal((2, 3, 8, 8))),
            Tensor(rng.standard_normal((4, 3, 3, 3))),
            stride=2,
            padding=1,
        )
        assert out.shape == (2, 4, 4, 4)

    def test_bias_added_per_filter(self, rng):
        x = Tensor(np.zeros((1, 1, 4, 4)))
        w = Tensor(np.zeros((2, 1, 3, 3)))
        b = Tensor(np.array([1.5, -2.0]))
        out = F.conv2d(x, w, b, padding=1)
        assert np.all(out.data[0, 0] == 1.5)
        assert np.all(out.data[0, 1] == -2.0)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(
                Tensor(np.zeros((1, 3, 4, 4))), Tensor(np.zeros((2, 4, 3, 3)))
            )

    def test_gradients_all_inputs(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 3, 3)) * 0.2, requires_grad=True)
        b = Tensor(rng.standard_normal(3) * 0.1, requires_grad=True)
        check_grad(
            lambda: (F.conv2d(x, w, b, stride=1, padding=1) ** 2).sum(), x, w, b,
            atol=1e-5,
        )

    def test_gradients_strided(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.standard_normal((2, 2, 3, 3)) * 0.2, requires_grad=True)
        check_grad(
            lambda: (F.conv2d(x, w, stride=2, padding=0) ** 2).sum(), x, w,
            atol=1e-5,
        )

    def test_1x1_conv_is_channel_mix(self, rng):
        x = rng.standard_normal((1, 3, 4, 4))
        w = rng.standard_normal((2, 3, 1, 1))
        out = F.conv2d(Tensor(x), Tensor(w))
        ref = np.einsum("fc,nchw->nfhw", w[:, :, 0, 0], x)
        np.testing.assert_allclose(out.data, ref, atol=1e-12)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        np.testing.assert_array_equal(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_grad_routes_to_argmax(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_array_equal(x.grad[0, 0], expected)

    def test_max_pool_stride_differs_from_kernel(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 5, 5)))
        out = F.max_pool2d(x, 3, stride=1)
        assert out.shape == (1, 1, 3, 3)

    def test_max_pool_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 4, 4)), requires_grad=True)
        check_grad(lambda: (F.max_pool2d(x, 2) ** 2).sum(), x)

    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 4, 4)), requires_grad=True)
        check_grad(lambda: (F.avg_pool2d(x, 2) ** 2).sum(), x)

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        out = F.global_avg_pool2d(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)))


class TestLinear:
    def test_linear_values(self, rng):
        x = rng.standard_normal((4, 5))
        w = rng.standard_normal((3, 5))
        b = rng.standard_normal(3)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, x @ w.T + b, atol=1e-12)

    def test_linear_no_bias(self, rng):
        x = rng.standard_normal((2, 3))
        w = rng.standard_normal((4, 3))
        out = F.linear(Tensor(x), Tensor(w))
        np.testing.assert_allclose(out.data, x @ w.T)


class TestSoftmaxFamily:
    def test_softmax_sums_to_one(self, rng):
        out = F.softmax(Tensor(rng.standard_normal((5, 7))))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(5))

    def test_softmax_matches_scipy(self, rng):
        from scipy.special import softmax as scipy_softmax

        x = rng.standard_normal((3, 6))
        np.testing.assert_allclose(
            F.softmax(Tensor(x)).data, scipy_softmax(x, axis=1), atol=1e-12
        )

    def test_softmax_stable_for_large_logits(self):
        out = F.softmax(Tensor(np.array([[1000.0, 1000.0]])))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.standard_normal((4, 5))
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x)).data,
            np.log(F.softmax(Tensor(x)).data),
            atol=1e-12,
        )

    def test_log_softmax_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        check_grad(lambda: (F.log_softmax(x) ** 2).sum(), x, atol=1e-5)

    def test_softmax_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        check_grad(lambda: (F.softmax(x) ** 2).sum(), x, atol=1e-6)

    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = F.cross_entropy(logits, np.array([0, 3]))
        assert float(loss.data) == pytest.approx(np.log(4.0))

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert float(loss.data) < 1e-10

    def test_cross_entropy_label_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))

    def test_cross_entropy_gradient_is_softmax_minus_onehot(self, rng):
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        labels = np.array([0, 1, 2, 1])
        F.cross_entropy(x, labels).backward()
        probs = F.softmax(Tensor(x.data)).data
        expected = (probs - F.one_hot(labels, 3)) / 4
        np.testing.assert_allclose(x.grad, expected, atol=1e-12)

    def test_nll_loss_matches_cross_entropy(self, rng):
        x = rng.standard_normal((3, 5))
        labels = np.array([1, 0, 4])
        ce = F.cross_entropy(Tensor(x), labels)
        nll = F.nll_loss(F.log_softmax(Tensor(x), axis=1), labels)
        assert float(ce.data) == pytest.approx(float(nll.data))


class TestKLDivergence:
    def test_zero_when_identical(self, rng):
        logits = Tensor(rng.standard_normal((4, 6)))
        kl = F.kl_divergence(logits, Tensor(logits.data.copy()))
        assert float(kl.data) == pytest.approx(0.0, abs=1e-12)

    def test_non_negative(self, rng):
        for _ in range(5):
            t = Tensor(rng.standard_normal((3, 5)))
            s = Tensor(rng.standard_normal((3, 5)))
            assert float(F.kl_divergence(t, s).data) >= 0.0

    def test_teacher_receives_no_gradient(self, rng):
        t = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        s = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        F.kl_divergence(t, s).backward()
        assert t.grad is None
        assert s.grad is not None

    def test_matches_scipy_rel_entr(self, rng):
        from scipy.special import rel_entr, softmax as scipy_softmax

        t = rng.standard_normal((3, 5))
        s = rng.standard_normal((3, 5))
        expected = (
            rel_entr(scipy_softmax(t, axis=1), scipy_softmax(s, axis=1))
            .sum(axis=1)
            .mean()
        )
        actual = float(F.kl_divergence(Tensor(t), Tensor(s)).data)
        assert actual == pytest.approx(expected, rel=1e-10)

    def test_temperature_scaling(self, rng):
        t = Tensor(rng.standard_normal((3, 5)))
        s = Tensor(rng.standard_normal((3, 5)))
        kl_t1 = float(F.kl_divergence(t, s, temperature=1.0).data)
        kl_t4 = float(F.kl_divergence(t, s, temperature=4.0).data)
        assert kl_t1 != pytest.approx(kl_t4)


class TestMiscFunctional:
    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_accuracy_perfect(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert F.accuracy(logits, np.array([0, 1])) == 1.0

    def test_accuracy_half(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert F.accuracy(logits, np.array([0, 1])) == 0.5

    def test_accuracy_accepts_tensor(self):
        logits = Tensor(np.array([[1.0, 0.0]]))
        assert F.accuracy(logits, np.array([0])) == 1.0

    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(rng.standard_normal(100))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_dropout_zero_p_is_identity(self, rng):
        x = Tensor(rng.standard_normal(10))
        assert F.dropout(x, 0.0, training=True) is x

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(20000))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropout_invalid_p_raises(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)
