"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestListingCommands:
    def test_models_lists_registry(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "vgg-small" in out
        assert "resnet20-x5" in out

    def test_datasets_lists_presets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "synth10" in out and "synth100" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["quantize", "--model", "alexnet"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "9"])

    def test_granularity_figure_registered(self):
        # Bad scale still proves the figure name parses.
        with pytest.raises(SystemExit):
            main(["figure", "granularity", "--scale", "bogus"])

    def test_cost_command_registered(self):
        with pytest.raises(SystemExit):
            main(["cost", "--model", "alexnet"])

    def test_sweep_command_registered(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--model", "alexnet"])


class TestFigureAll:
    def test_figure_requires_number_or_all(self, capsys):
        assert main(["figure"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_figure_rejects_number_and_all(self, capsys):
        assert main(["figure", "3", "--all"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_figure_all_runs_units_through_cache(self, capsys, tmp_path, monkeypatch):
        # Swap the (expensive) figure units for toy units: this tests
        # the CLI wiring — runner invocation, rendering, cache summary.
        import repro.runner
        from repro.runner.testing import toy_units

        monkeypatch.setattr(
            repro.runner,
            "figure_units",
            lambda scale, seed: toy_units([1.0, 2.0], seeds=[seed]),
        )
        code = main(["figure", "--all", "--jobs", "1", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "=== toy-v1-s0 (computed) ===" in out
        assert "toy value=2 scaled=2" in out
        assert "results cache: 0 hits, 2 misses" in out

        code = main(["figure", "--all", "--jobs", "1", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "=== toy-v1-s0 (cached) ===" in out
        assert "results cache: 2 hits, 0 misses" in out


class TestSweepArguments:
    def test_bad_budget_grid_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--budgets", "fast,slow"])

    def test_empty_seed_grid_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--seeds", ","])


@pytest.mark.slow
class TestCostCommand:
    def test_cost_mlp_end_to_end(self, capsys, tmp_path, monkeypatch):
        import repro.experiments.presets as presets

        monkeypatch.setattr(presets, "_CACHE_DIR", tmp_path / "cache")
        presets.clear_caches()
        code = main(
            [
                "cost",
                "--model", "mlp",
                "--dataset", "synth10",
                "--scale", "tiny",
                "--bits", "2.0",
                "--act-bits", "2",
                "--refine-epochs", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-layer hardware cost" in out
        assert "arrangement cost comparison" in out
        assert "uniform" in out


@pytest.mark.slow
class TestSweepCommand:
    def test_sweep_end_to_end_resumes_and_is_jobs_invariant(
        self, capsys, tmp_path, monkeypatch
    ):
        import repro.experiments.presets as presets
        from repro.runner import SweepRunner, budget_sweep_units

        # Env (not a module monkeypatch) so the isolation reaches pool
        # workers under any multiprocessing start method.
        monkeypatch.setenv("REPRO_PRETRAINED_CACHE", str(tmp_path / "pretrained"))
        presets.clear_caches()
        argv = [
            "sweep",
            "--model", "mlp",
            "--dataset", "synth10",
            "--scale", "tiny",
            "--budgets", "1.5,2.5",
            "--seeds", "0",
            "--refine-epochs", "1",
            "--jobs", "2",
            "--cache-dir", str(tmp_path / "results"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "budget sweep — mlp on synth10 (tiny)" in out
        assert "accuracy-cost frontier" in out
        assert "results cache: 0 hits, 2 misses" in out

        # Killed-and-restarted semantics: the second invocation finds
        # every grid point archived and re-runs nothing.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "results cache: 2 hits, 0 misses" in out

        # Jobs-count invariance: a fresh --jobs 1 sweep of the same
        # grid archives byte-identical result JSON.
        specs = budget_sweep_units(
            model="mlp",
            dataset="synth10",
            budgets=(1.5, 2.5),
            seeds=(0,),
            scale="tiny",
            refine_epochs=1,
        )
        argv_inline = argv[:-3] + ["1", "--cache-dir", str(tmp_path / "results-inline")]
        assert argv_inline[-4] == "--jobs"
        assert main(argv_inline) == 0
        capsys.readouterr()
        pooled = SweepRunner(cache_dir=tmp_path / "results", jobs=2)
        inline = SweepRunner(cache_dir=tmp_path / "results-inline", jobs=1)
        for spec in specs:
            assert (
                pooled.result_path(spec).read_bytes()
                == inline.result_path(spec).read_bytes()
            )


@pytest.mark.slow
class TestQuantizeCommand:
    def test_quantize_mlp_end_to_end(self, capsys, tmp_path, monkeypatch):
        import repro.experiments.presets as presets

        monkeypatch.setattr(presets, "_CACHE_DIR", tmp_path / "cache")
        presets.clear_caches()
        checkpoint = tmp_path / "quantized.npz"
        code = main(
            [
                "quantize",
                "--model", "mlp",
                "--dataset", "synth10",
                "--scale", "tiny",
                "--bits", "2.0",
                "--refine-epochs", "2",
                "--save", str(checkpoint),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Class-based Quantization report" in out
        assert checkpoint.exists()
        with np.load(checkpoint) as archive:
            assert len(archive.files) > 1
