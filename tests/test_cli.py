"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestListingCommands:
    def test_models_lists_registry(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "vgg-small" in out
        assert "resnet20-x5" in out

    def test_datasets_lists_presets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "synth10" in out and "synth100" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["quantize", "--model", "alexnet"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "9"])

    def test_granularity_figure_registered(self):
        # Bad scale still proves the figure name parses.
        with pytest.raises(SystemExit):
            main(["figure", "granularity", "--scale", "bogus"])

    def test_cost_command_registered(self):
        with pytest.raises(SystemExit):
            main(["cost", "--model", "alexnet"])

    def test_sweep_command_registered(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--model", "alexnet"])

    def test_serve_requires_artifact(self):
        with pytest.raises(SystemExit):
            main(["serve"])

    def test_predict_requires_artifact_and_input(self):
        with pytest.raises(SystemExit):
            main(["predict"])
        with pytest.raises(SystemExit):
            main(["predict", "--artifact", "model.cqw"])


class TestFigureAll:
    def test_figure_requires_number_or_all(self, capsys):
        assert main(["figure"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_figure_rejects_number_and_all(self, capsys):
        assert main(["figure", "3", "--all"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_figure_all_runs_units_through_cache(self, capsys, tmp_path, monkeypatch):
        # Swap the (expensive) figure units for toy units: this tests
        # the CLI wiring — runner invocation, rendering, cache summary.
        import repro.runner
        from repro.runner.testing import toy_units

        monkeypatch.setattr(
            repro.runner,
            "figure_units",
            lambda scale, seed: toy_units([1.0, 2.0], seeds=[seed]),
        )
        code = main(["figure", "--all", "--jobs", "1", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "=== toy-v1-s0 (computed) ===" in out
        assert "toy value=2 scaled=2" in out
        assert "results cache: 0 hits, 2 misses" in out

        code = main(["figure", "--all", "--jobs", "1", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "=== toy-v1-s0 (cached) ===" in out
        assert "results cache: 2 hits, 0 misses" in out


class TestSweepArguments:
    def test_bad_budget_grid_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--budgets", "fast,slow"])

    def test_empty_seed_grid_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--seeds", ","])


@pytest.fixture
def preset_artifact(tmp_path, quantized_mlp_factory):
    """A serving artifact of an untrained tiny-scale MLP preset on disk.

    The geometry matches the ``synth10``/``tiny`` preset exactly, so
    ``repro serve`` can regenerate replay traffic from the manifest —
    without the (slow) pretrain+pipeline producer path.
    """
    from repro.experiments.presets import get_scale
    from repro.serve import save_artifact

    model, manifest = quantized_mlp_factory(
        seed=0, bits_seed=5, num_classes=10, image_size=get_scale("tiny").image_size
    )
    path = tmp_path / "mlp.cqw"
    save_artifact(path, model, manifest)
    return path


class TestServeCommand:
    def test_serve_replays_verifies_and_reports_cache(self, capsys, preset_artifact):
        code = main(
            [
                "serve",
                "--artifact", str(preset_artifact),
                "--requests", "8",
                "--concurrency", "2",
                "--repeat", "2",
                "--max-batch", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "round 1: 8 requests" in out
        assert "round 2: 8 requests" in out
        assert out.count("parity: OK (8 requests bit-exact)") == 2
        # Second engine start hits the content-hash artifact cache.
        assert "artifact cache: 1 hits, 1 misses" in out

    def test_serve_multi_engine_fans_out_with_parity(self, capsys, preset_artifact):
        code = main(
            [
                "serve",
                "--artifact", str(preset_artifact),
                "--requests", "8",
                "--concurrency", "4",
                "--engines", "2",
                "--max-batch", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "across 2 engine(s)" in out
        assert "parity: OK (8 requests bit-exact)" in out
        # One parse+build; the second engine's model is a leased clone.
        assert "1 misses" in out and "2 leases" in out

    def test_serve_rejects_bad_engine_count(self, capsys, preset_artifact):
        code = main(["serve", "--artifact", str(preset_artifact), "--engines", "0"])
        assert code == 2
        assert "--engines" in capsys.readouterr().err

    def test_serve_reports_artifact_byte_breakdown(self, capsys, preset_artifact):
        code = main(
            ["serve", "--artifact", str(preset_artifact), "--requests", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "payload" in out and "sidecar" in out and "float32" in out

    def test_serve_missing_artifact_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["serve", "--artifact", str(tmp_path / "nope.cqw")])


class TestPredictCommand:
    def test_predict_batch_from_npz(self, capsys, preset_artifact, tmp_path):
        rng = np.random.default_rng(0)
        batch = tmp_path / "batch.npz"
        np.savez(batch, images=rng.standard_normal((3, 3, 16, 16)))
        out_path = tmp_path / "predictions.npz"
        code = main(
            [
                "predict",
                "--artifact", str(preset_artifact),
                "--input", str(batch),
                "--output", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sample 0: class" in out
        assert "predicted 3 samples" in out
        with np.load(out_path) as archive:
            assert archive["logits"].shape == (3, 10)
            assert archive["labels"].shape == (3,)

    def test_predict_missing_key_errors(self, capsys, preset_artifact, tmp_path):
        batch = tmp_path / "batch.npz"
        np.savez(batch, pictures=np.zeros((2, 3, 16, 16)), other=np.zeros(3))
        assert main(
            ["predict", "--artifact", str(preset_artifact), "--input", str(batch)]
        ) == 2
        assert "no array 'images'" in capsys.readouterr().err

    def test_predict_rejects_single_example(self, capsys, preset_artifact, tmp_path):
        batch = tmp_path / "one.npy"
        np.save(batch, np.zeros(7))
        assert main(
            ["predict", "--artifact", str(preset_artifact), "--input", str(batch)]
        ) == 2
        assert "expected a batch" in capsys.readouterr().err


@pytest.mark.slow
class TestCostCommand:
    def test_cost_mlp_end_to_end(self, capsys, tmp_path, monkeypatch):
        import repro.experiments.presets as presets

        monkeypatch.setattr(presets, "_CACHE_DIR", tmp_path / "cache")
        presets.clear_caches()
        code = main(
            [
                "cost",
                "--model", "mlp",
                "--dataset", "synth10",
                "--scale", "tiny",
                "--bits", "2.0",
                "--act-bits", "2",
                "--refine-epochs", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-layer hardware cost" in out
        assert "arrangement cost comparison" in out
        assert "uniform" in out


@pytest.mark.slow
class TestSweepCommand:
    def test_sweep_end_to_end_resumes_and_is_jobs_invariant(
        self, capsys, tmp_path, monkeypatch
    ):
        import repro.experiments.presets as presets
        from repro.runner import SweepRunner, budget_sweep_units

        # Env (not a module monkeypatch) so the isolation reaches pool
        # workers under any multiprocessing start method.
        monkeypatch.setenv("REPRO_PRETRAINED_CACHE", str(tmp_path / "pretrained"))
        presets.clear_caches()
        argv = [
            "sweep",
            "--model", "mlp",
            "--dataset", "synth10",
            "--scale", "tiny",
            "--budgets", "1.5,2.5",
            "--seeds", "0",
            "--refine-epochs", "1",
            "--jobs", "2",
            "--cache-dir", str(tmp_path / "results"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "budget sweep — mlp on synth10 (tiny)" in out
        assert "accuracy-cost frontier" in out
        assert "results cache: 0 hits, 2 misses" in out

        # Killed-and-restarted semantics: the second invocation finds
        # every grid point archived and re-runs nothing.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "results cache: 2 hits, 0 misses" in out

        # Jobs-count invariance: a fresh --jobs 1 sweep of the same
        # grid archives byte-identical result JSON.
        specs = budget_sweep_units(
            model="mlp",
            dataset="synth10",
            budgets=(1.5, 2.5),
            seeds=(0,),
            scale="tiny",
            refine_epochs=1,
        )
        argv_inline = argv[:-3] + ["1", "--cache-dir", str(tmp_path / "results-inline")]
        assert argv_inline[-4] == "--jobs"
        assert main(argv_inline) == 0
        capsys.readouterr()
        pooled = SweepRunner(cache_dir=tmp_path / "results", jobs=2)
        inline = SweepRunner(cache_dir=tmp_path / "results-inline", jobs=1)
        for spec in specs:
            assert (
                pooled.result_path(spec).read_bytes()
                == inline.result_path(spec).read_bytes()
            )


@pytest.mark.slow
class TestQuantizeCommand:
    def test_quantize_mlp_end_to_end(self, capsys, tmp_path, monkeypatch):
        import repro.experiments.presets as presets

        monkeypatch.setattr(presets, "_CACHE_DIR", tmp_path / "cache")
        presets.clear_caches()
        checkpoint = tmp_path / "quantized.npz"
        code = main(
            [
                "quantize",
                "--model", "mlp",
                "--dataset", "synth10",
                "--scale", "tiny",
                "--bits", "2.0",
                "--refine-epochs", "2",
                "--save", str(checkpoint),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Class-based Quantization report" in out
        assert checkpoint.exists()
        with np.load(checkpoint) as archive:
            assert len(archive.files) > 1


@pytest.mark.slow
class TestServeEndToEnd:
    def test_quantize_save_artifact_then_serve_then_predict(
        self, capsys, tmp_path, monkeypatch
    ):
        """The full artifact lifecycle: search → export → pack → serve."""
        import repro.experiments.presets as presets

        monkeypatch.setenv("REPRO_PRETRAINED_CACHE", str(tmp_path / "pretrained"))
        presets.clear_caches()
        artifact = tmp_path / "quantized.cqw"
        code = main(
            [
                "quantize",
                "--model", "mlp",
                "--dataset", "synth10",
                "--scale", "tiny",
                "--bits", "2.0",
                "--refine-epochs", "1",
                "--save-artifact", str(artifact),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "saved serving artifact" in out
        assert artifact.exists()

        code = main(
            [
                "serve",
                "--artifact", str(artifact),
                "--requests", "16",
                "--concurrency", "4",
                "--repeat", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("parity: OK (16 requests bit-exact)") == 2
        assert "artifact cache: 1 hits, 1 misses" in out

        batch = tmp_path / "batch.npz"
        dataset = presets.get_dataset("synth10", scale="tiny", seed=0)
        np.savez(batch, images=dataset.test_images[:4])
        code = main(
            ["predict", "--artifact", str(artifact), "--input", str(batch)]
        )
        assert code == 0
        assert "predicted 4 samples" in capsys.readouterr().out
