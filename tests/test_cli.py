"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestListingCommands:
    def test_models_lists_registry(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "vgg-small" in out
        assert "resnet20-x5" in out

    def test_datasets_lists_presets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "synth10" in out and "synth100" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["quantize", "--model", "alexnet"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "9"])

    def test_granularity_figure_registered(self):
        # Bad scale still proves the figure name parses.
        with pytest.raises(SystemExit):
            main(["figure", "granularity", "--scale", "bogus"])

    def test_cost_command_registered(self):
        with pytest.raises(SystemExit):
            main(["cost", "--model", "alexnet"])


@pytest.mark.slow
class TestCostCommand:
    def test_cost_mlp_end_to_end(self, capsys, tmp_path, monkeypatch):
        import repro.experiments.presets as presets

        monkeypatch.setattr(presets, "_CACHE_DIR", tmp_path / "cache")
        presets.clear_caches()
        code = main(
            [
                "cost",
                "--model", "mlp",
                "--dataset", "synth10",
                "--scale", "tiny",
                "--bits", "2.0",
                "--act-bits", "2",
                "--refine-epochs", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-layer hardware cost" in out
        assert "arrangement cost comparison" in out
        assert "uniform" in out


@pytest.mark.slow
class TestQuantizeCommand:
    def test_quantize_mlp_end_to_end(self, capsys, tmp_path, monkeypatch):
        import repro.experiments.presets as presets

        monkeypatch.setattr(presets, "_CACHE_DIR", tmp_path / "cache")
        presets.clear_caches()
        checkpoint = tmp_path / "quantized.npz"
        code = main(
            [
                "quantize",
                "--model", "mlp",
                "--dataset", "synth10",
                "--scale", "tiny",
                "--bits", "2.0",
                "--refine-epochs", "2",
                "--save", str(checkpoint),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Class-based Quantization report" in out
        assert checkpoint.exists()
        with np.load(checkpoint) as archive:
            assert len(archive.files) > 1
