"""Tests for the trainer, evaluation, checkpointing and cloning."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader
from repro.models.mlp import MLP
from repro.nn import DistillationLoss
from repro.optim import SGD, MultiStepLR
from repro.quant import quantize_model, quantized_layers
from repro.train import Trainer, evaluate_model
from repro.utils import (
    clone_module,
    count_parameters,
    load_checkpoint,
    save_checkpoint,
    set_global_seed,
)
from repro.tensor import Tensor


def separable_data(n=60, features=8, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((classes, features)) * 3
    labels = np.repeat(np.arange(classes), n // classes)
    images = centers[labels] + 0.3 * rng.standard_normal((n, features))
    return images, labels


class TestTrainer:
    def test_loss_decreases(self):
        images, labels = separable_data()
        model = MLP(8, (16, 8), 3, rng=np.random.default_rng(0))
        loader = DataLoader(ArrayDataset(images, labels), batch_size=20, shuffle=True, seed=0)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05))
        history = trainer.fit(loader, epochs=8)
        assert history.train[-1].loss < history.train[0].loss

    def test_reaches_high_accuracy(self):
        images, labels = separable_data()
        model = MLP(8, (16, 8), 3, rng=np.random.default_rng(0))
        loader = DataLoader(ArrayDataset(images, labels), batch_size=20, shuffle=True, seed=0)
        history = Trainer(model, SGD(model.parameters(), lr=0.05)).fit(loader, epochs=15)
        assert history.train[-1].accuracy > 0.9

    def test_val_metrics_recorded(self):
        images, labels = separable_data()
        model = MLP(8, (16, 8), 3, rng=np.random.default_rng(0))
        loader = DataLoader(ArrayDataset(images, labels), batch_size=30)
        history = Trainer(model, SGD(model.parameters(), lr=0.05)).fit(
            loader, val_loader=loader, epochs=3
        )
        assert len(history.val) == 3
        assert history.best_val_accuracy >= history.val[0].accuracy

    def test_scheduler_steps_per_epoch(self):
        images, labels = separable_data()
        model = MLP(8, (16, 8), 3, rng=np.random.default_rng(0))
        loader = DataLoader(ArrayDataset(images, labels), batch_size=30)
        optimizer = SGD(model.parameters(), lr=1.0)
        scheduler = MultiStepLR(optimizer, milestones=[1], gamma=0.1)
        Trainer(model, optimizer, scheduler=scheduler).fit(loader, epochs=2)
        assert optimizer.lr == pytest.approx(0.1)

    def test_epoch_callback_invoked(self):
        images, labels = separable_data()
        model = MLP(8, (16, 8), 3, rng=np.random.default_rng(0))
        loader = DataLoader(ArrayDataset(images, labels), batch_size=30)
        calls = []
        Trainer(
            model,
            SGD(model.parameters(), lr=0.01),
            epoch_callback=lambda e, t, m: calls.append(e),
        ).fit(loader, epochs=3)
        assert calls == [0, 1, 2]

    def test_distillation_training_path(self):
        images, labels = separable_data()
        teacher = MLP(8, (16, 8), 3, rng=np.random.default_rng(0))
        loader = DataLoader(ArrayDataset(images, labels), batch_size=20, shuffle=True, seed=0)
        Trainer(teacher, SGD(teacher.parameters(), lr=0.05)).fit(loader, epochs=10)
        student = MLP(8, (16, 8), 3, rng=np.random.default_rng(1))
        trainer = Trainer(
            student,
            SGD(student.parameters(), lr=0.05),
            loss_fn=DistillationLoss(alpha=0.3),
            teacher=teacher,
        )
        history = trainer.fit(loader, epochs=10)
        assert history.train[-1].accuracy > 0.8

    def test_empty_loader_raises(self):
        model = MLP(8, (16, 8), 3, rng=np.random.default_rng(0))
        empty = DataLoader(
            ArrayDataset(np.zeros((0, 8)), np.zeros(0)), batch_size=4
        )
        with pytest.raises(ValueError):
            Trainer(model, SGD(model.parameters(), lr=0.01)).train_epoch(empty)

    def test_history_empty_defaults(self):
        from repro.train.trainer import History

        history = History()
        assert np.isnan(history.final_val_accuracy)
        assert np.isnan(history.best_val_accuracy)


class TestEvaluateModel:
    def test_matches_manual_accuracy(self):
        images, labels = separable_data()
        model = MLP(8, (16, 8), 3, rng=np.random.default_rng(0))
        loader = DataLoader(ArrayDataset(images, labels), batch_size=25)
        metrics = evaluate_model(model, loader)
        model.eval()
        from repro.tensor.tensor import no_grad

        with no_grad():
            logits = model(Tensor(images))
        expected = float((logits.data.argmax(axis=1) == labels).mean())
        assert metrics.accuracy == pytest.approx(expected)
        assert metrics.num_samples == 60

    def test_restores_training_mode(self):
        images, labels = separable_data()
        model = MLP(8, (16, 8), 3, rng=np.random.default_rng(0))
        model.train()
        evaluate_model(model, DataLoader(ArrayDataset(images, labels), batch_size=30))
        assert model.training

    def test_no_gradients_accumulated(self):
        images, labels = separable_data()
        model = MLP(8, (16, 8), 3, rng=np.random.default_rng(0))
        evaluate_model(model, DataLoader(ArrayDataset(images, labels), batch_size=30))
        assert all(p.grad is None for p in model.parameters())


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        model = MLP(8, (6, 4), 2, rng=np.random.default_rng(0))
        path = tmp_path / "model.npz"
        save_checkpoint(model, path, metadata={"accuracy": 0.93})
        other = MLP(8, (6, 4), 2, rng=np.random.default_rng(1))
        metadata = load_checkpoint(other, path)
        assert metadata == {"accuracy": 0.93}
        np.testing.assert_array_equal(other.fc0.weight.data, model.fc0.weight.data)

    def test_no_metadata(self, tmp_path):
        model = MLP(8, (6, 4), 2, rng=np.random.default_rng(0))
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        assert load_checkpoint(model, path) is None

    def test_creates_parent_dirs(self, tmp_path):
        model = MLP(8, (6, 4), 2, rng=np.random.default_rng(0))
        path = tmp_path / "deep" / "nested" / "model.npz"
        save_checkpoint(model, path)
        assert path.exists()


class TestClone:
    def test_clone_is_independent(self):
        model = MLP(8, (6, 4), 2, rng=np.random.default_rng(0))
        clone = clone_module(model)
        clone.fc0.weight.data += 100.0
        assert not np.allclose(model.fc0.weight.data, clone.fc0.weight.data)

    def test_clone_drops_gradients(self):
        model = MLP(8, (6, 4), 2, rng=np.random.default_rng(0))
        model(Tensor(np.ones((2, 8)))).sum().backward()
        clone = clone_module(model)
        assert all(p.grad is None for p in clone.parameters())

    def test_clone_drops_hooks(self):
        model = MLP(8, (6, 4), 2, rng=np.random.default_rng(0))
        model.relu1.register_forward_hook(lambda m, o: None)
        clone = clone_module(model)
        assert len(clone.relu1._forward_hooks) == 0
        assert len(model.relu1._forward_hooks) == 1

    def test_clone_preserves_quant_state(self):
        model = MLP(8, (6, 4, 4), 2, rng=np.random.default_rng(0))
        quantize_model(model, max_bits=4)
        layers = quantized_layers(model)
        first = next(iter(layers.values()))
        first.set_bits(np.full(first.num_filters, 2))
        clone = clone_module(model)
        clone_first = next(iter(quantized_layers(clone).values()))
        np.testing.assert_array_equal(clone_first.bits, first.bits)

    def test_count_parameters(self):
        model = MLP(8, (6, 4), 2, rng=np.random.default_rng(0))
        assert count_parameters(model) == (8 * 6 + 6) + (6 * 4 + 4) + (4 * 2 + 2)


class TestSeeding:
    def test_returns_generator(self):
        rng = set_global_seed(42)
        assert isinstance(rng, np.random.Generator)

    def test_reproducible(self):
        a = set_global_seed(1).random(3)
        b = set_global_seed(1).random(3)
        np.testing.assert_array_equal(a, b)
