"""Documentation health: links resolve, docs cross-link, CLI answers.

The CI docs job runs exactly this module (plus ``python -m repro
--help``); it is also part of tier-1 so broken links fail locally
before they reach CI.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

# Inline markdown links: [text](target). None of our targets contain
# parentheses or whitespace, which the pattern rejects to stay strict.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _links(path: Path):
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        yield target


def test_doc_files_exist():
    names = [path.name for path in DOC_FILES]
    assert "README.md" in names
    assert "architecture.md" in names
    assert "experiments.md" in names


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda path: path.name)
def test_relative_links_resolve(doc):
    broken = []
    for target in _links(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:  # pure in-page anchor
            continue
        resolved = (doc.parent / file_part).resolve()
        if not resolved.exists():
            broken.append(target)
        # Links must stay inside the repository.
        elif REPO_ROOT not in resolved.parents and resolved != REPO_ROOT:
            broken.append(f"{target} (escapes the repo)")
    assert not broken, f"{doc.name}: broken links {broken}"


def test_docs_cross_link_architecture_and_experiments():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in readme
    assert "docs/experiments.md" in readme
    architecture = (REPO_ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    assert "ROADMAP.md" in architecture and "experiments.md" in architecture
    roadmap = (REPO_ROOT / "ROADMAP.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in roadmap


def test_readme_documents_tier1_verify_command():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "python -m pytest -x -q" in readme


def test_cli_help_smoke():
    """``python -m repro --help`` exits 0 and lists the subcommands the
    README and docs/experiments.md advertise."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    for command in ("quantize", "figure", "cost", "serve", "predict", "models", "datasets"):
        assert command in result.stdout
