"""Tests for repro.quant.integer: integer-only execution of exported codes.

The key invariant: integer execution reproduces the fake-quantized
forward to float64 rounding, for any bit arrangement, with and without
activation quantization, on conv and linear layers and on whole models.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.vgg import VGGSmall
from repro.nn import Linear, Module
from repro.quant.integer import (
    IntegerLayerSpec,
    compile_integer_layer,
    compile_integer_model,
    integer_forward,
    integer_mode,
    verify_integer_equivalence,
)
from repro.quant.qmodules import (
    QConv2d,
    QLinear,
    calibrate_activations,
    quantize_model,
)
from repro.tensor.tensor import Tensor, no_grad


def make_qlinear(in_features=6, out_features=5, act_bits=None, seed=0):
    rng = np.random.default_rng(seed)
    layer = QLinear(in_features, out_features, max_bits=4, act_bits=act_bits, rng=rng)
    layer.weight.data[...] = rng.standard_normal((out_features, in_features))
    if layer.bias is not None:
        layer.bias.data[...] = rng.standard_normal(out_features)
    return layer


def make_qconv(in_channels=3, out_channels=4, k=3, act_bits=None, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    layer = QConv2d(
        in_channels, out_channels, k, max_bits=4, act_bits=act_bits, rng=rng, **kwargs
    )
    layer.weight.data[...] = rng.standard_normal(layer.weight.shape)
    if layer.bias is not None:
        layer.bias.data[...] = rng.standard_normal(out_channels)
    return layer


def fake_forward(layer, x: np.ndarray) -> np.ndarray:
    layer.eval()
    with no_grad():
        return layer(Tensor(x)).data.copy()


def calibrated(layer, x: np.ndarray):
    """Run one calibration batch so the activation observer has a range."""
    layer.calibrating = True
    with no_grad():
        layer(Tensor(x))
    layer.calibrating = False
    return layer


class TestLinearEquivalence:
    def test_weight_only_matches_fake_quant(self, rng):
        layer = make_qlinear()
        layer.set_bits(np.array([4, 3, 2, 1, 4]))
        x = rng.standard_normal((7, 6))
        spec = compile_integer_layer(layer, "fc")
        np.testing.assert_allclose(
            integer_forward(spec, x), fake_forward(layer, x), atol=1e-9
        )

    def test_with_activation_quantization(self, rng):
        layer = make_qlinear(act_bits=3)
        x = np.abs(rng.standard_normal((7, 6)))  # post-ReLU-like input
        calibrated(layer, x)
        spec = compile_integer_layer(layer, "fc")
        assert spec.act_bits == 3
        np.testing.assert_allclose(
            integer_forward(spec, x), fake_forward(layer, x), atol=1e-9
        )

    def test_pruned_neurons_output_bias_only(self, rng):
        layer = make_qlinear()
        layer.set_bits(np.array([0, 0, 0, 0, 0]))
        x = rng.standard_normal((4, 6))
        spec = compile_integer_layer(layer, "fc")
        out = integer_forward(spec, x)
        np.testing.assert_allclose(out, np.broadcast_to(layer.bias.data, out.shape))

    def test_no_bias_layer(self, rng):
        rng_local = np.random.default_rng(5)
        layer = QLinear(6, 5, bias=False, max_bits=4, rng=rng_local)
        layer.weight.data[...] = rng_local.standard_normal((5, 6))
        x = rng.standard_normal((3, 6))
        spec = compile_integer_layer(layer, "fc")
        np.testing.assert_allclose(
            integer_forward(spec, x), fake_forward(layer, x), atol=1e-9
        )

    def test_all_zero_weights_degenerate_range(self, rng):
        layer = make_qlinear()
        layer.weight.data[...] = 0.0
        x = rng.standard_normal((3, 6))
        spec = compile_integer_layer(layer, "fc")
        np.testing.assert_allclose(
            integer_forward(spec, x), fake_forward(layer, x), atol=1e-12
        )


class TestConvEquivalence:
    def test_weight_only_matches_fake_quant(self, rng):
        layer = make_qconv(padding=1)
        layer.set_bits(np.array([4, 2, 1, 3]))
        x = rng.standard_normal((2, 3, 6, 6))
        spec = compile_integer_layer(layer, "conv")
        np.testing.assert_allclose(
            integer_forward(spec, x), fake_forward(layer, x), atol=1e-9
        )

    def test_with_activation_quantization(self, rng):
        layer = make_qconv(act_bits=2, padding=1)
        x = np.abs(rng.standard_normal((2, 3, 6, 6)))
        calibrated(layer, x)
        spec = compile_integer_layer(layer, "conv")
        np.testing.assert_allclose(
            integer_forward(spec, x), fake_forward(layer, x), atol=1e-9
        )

    def test_strided_conv(self, rng):
        layer = make_qconv(stride=2, padding=1)
        x = rng.standard_normal((2, 3, 8, 8))
        spec = compile_integer_layer(layer, "conv")
        np.testing.assert_allclose(
            integer_forward(spec, x), fake_forward(layer, x), atol=1e-9
        )

    def test_mixed_pruned_filters(self, rng):
        layer = make_qconv(padding=1)
        layer.set_bits(np.array([0, 4, 0, 2]))
        x = rng.standard_normal((2, 3, 6, 6))
        spec = compile_integer_layer(layer, "conv")
        out = integer_forward(spec, x)
        np.testing.assert_allclose(out, fake_forward(layer, x), atol=1e-9)
        # Pruned channels carry only their bias.
        np.testing.assert_allclose(out[:, 0], layer.bias.data[0])


class TestCompile:
    def test_rejects_float_layer(self):
        with pytest.raises(TypeError, match="QConv2d/QLinear"):
            compile_integer_layer(Linear(4, 2))

    def test_uncalibrated_observer_raises(self):
        layer = make_qlinear(act_bits=3)
        with pytest.raises(RuntimeError, match="uncalibrated"):
            compile_integer_layer(layer, "fc")

    def test_codes_within_level_range(self, rng):
        layer = make_qlinear()
        layer.set_bits(np.array([4, 3, 2, 1, 0]))
        spec = compile_integer_layer(layer, "fc")
        for f, bits in enumerate(spec.bits_per_filter):
            assert spec.codes[f].min() >= 0
            assert spec.codes[f].max() <= max(0, 2 ** int(bits) - 1)

    def test_filter_scales_zero_for_pruned(self):
        layer = make_qlinear()
        layer.set_bits(np.array([0, 4, 0, 2, 1]))
        spec = compile_integer_layer(layer, "fc")
        scales = spec.filter_scales()
        assert scales[0] == 0.0 and scales[2] == 0.0
        assert (scales[[1, 3, 4]] > 0).all()

    def test_model_without_quantized_layers_raises(self):
        class Plain(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(4, 2)

            def forward(self, x):
                return self.fc(x)

        with pytest.raises(ValueError, match="no quantized layers"):
            compile_integer_model(Plain())


class TestModelLevel:
    @pytest.fixture(scope="class")
    def quantized_vgg(self):
        model = VGGSmall(num_classes=4, image_size=8, width=8, rng=np.random.default_rng(0))
        quantize_model(model, max_bits=4, act_bits=3)
        rng = np.random.default_rng(1)
        calibration = [rng.standard_normal((4, 3, 8, 8)) for _ in range(2)]
        calibrate_activations(model, calibration)
        model.eval()
        return model

    def test_whole_model_equivalence(self, quantized_vgg, rng):
        ok, diff = verify_integer_equivalence(
            quantized_vgg, rng.standard_normal((3, 3, 8, 8))
        )
        assert ok, f"integer execution diverged by {diff}"

    def test_integer_mode_restores_float_path(self, quantized_vgg, rng):
        x = Tensor(rng.standard_normal((2, 3, 8, 8)))
        with no_grad():
            before = quantized_vgg(x).data.copy()
            with integer_mode(quantized_vgg):
                pass
            after = quantized_vgg(x).data.copy()
        np.testing.assert_array_equal(before, after)

    def test_accumulator_width_tracked(self, quantized_vgg, rng):
        with no_grad():
            with integer_mode(quantized_vgg) as integer_model:
                quantized_vgg(Tensor(rng.standard_normal((2, 3, 8, 8))))
        # Activation quantization is on, so int x int MACs ran and the
        # accumulator profile must be populated and plausible.
        assert 0 < integer_model.max_acc_bits() <= 64

    def test_integer_mode_cleanup_on_error(self, quantized_vgg):
        with pytest.raises(RuntimeError, match="boom"):
            with integer_mode(quantized_vgg):
                raise RuntimeError("boom")
        layers = [
            m
            for _n, m in quantized_vgg.named_modules()
            if isinstance(m, (QConv2d, QLinear))
        ]
        assert all("forward" not in layer.__dict__ for layer in layers)


class TestPropertyEquivalence:
    @given(
        bits=st.lists(st.integers(min_value=0, max_value=4), min_size=5, max_size=5),
        act_bits=st.one_of(st.none(), st.integers(min_value=1, max_value=6)),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_linear_equivalence_any_arrangement(self, bits, act_bits, seed):
        rng = np.random.default_rng(seed)
        layer = make_qlinear(act_bits=act_bits, seed=seed)
        layer.set_bits(np.array(bits))
        x = np.abs(rng.standard_normal((4, 6)))
        if act_bits is not None:
            calibrated(layer, x)
        spec = compile_integer_layer(layer, "fc")
        np.testing.assert_allclose(
            integer_forward(spec, x), fake_forward(layer, x), atol=1e-8
        )

    @given(
        bits=st.lists(st.integers(min_value=0, max_value=4), min_size=4, max_size=4),
        act_bits=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_conv_equivalence_any_arrangement(self, bits, act_bits, seed):
        rng = np.random.default_rng(seed)
        layer = make_qconv(act_bits=act_bits, seed=seed, padding=1)
        layer.set_bits(np.array(bits))
        x = np.abs(rng.standard_normal((2, 3, 5, 5)))
        if act_bits is not None:
            calibrated(layer, x)
        spec = compile_integer_layer(layer, "conv")
        np.testing.assert_allclose(
            integer_forward(spec, x), fake_forward(layer, x), atol=1e-8
        )


class TestAccumulatorBounds:
    """acc_bits_used must respect the arithmetic worst-case bound."""

    @given(
        w_bits=st.integers(min_value=1, max_value=4),
        a_bits=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_linear_acc_within_worst_case(self, w_bits, a_bits, seed):
        rng = np.random.default_rng(seed)
        layer = make_qlinear(act_bits=a_bits, seed=seed)
        layer.set_bits(np.full(5, w_bits))
        x = np.abs(rng.standard_normal((4, 6)))
        calibrated(layer, x)
        spec = compile_integer_layer(layer, "fc")
        integer_forward(spec, x)
        # Each output accumulates in_features products of codes bounded
        # by (2^w - 1)(2^a - 1).
        worst = 6 * (2**w_bits - 1) * (2**a_bits - 1)
        assert spec.acc_bits_used <= int(worst).bit_length() + 1

    def test_acc_bits_monotone_across_runs(self, rng):
        layer = make_qlinear(act_bits=4)
        small = np.abs(rng.standard_normal((4, 6))) * 0.1
        large = np.abs(rng.standard_normal((4, 6))) * 10.0
        calibrated(layer, large)  # range covers both inputs
        spec = compile_integer_layer(layer, "fc")
        integer_forward(spec, small)
        after_small = spec.acc_bits_used
        integer_forward(spec, large)
        assert spec.acc_bits_used >= after_small

    def test_weight_only_execution_does_not_track_acc(self, rng):
        layer = make_qlinear(act_bits=None)
        spec = compile_integer_layer(layer, "fc")
        integer_forward(spec, rng.standard_normal((4, 6)))
        # Float activations -> no integer accumulator profile.
        assert spec.acc_bits_used == 0


class TestExportCompileParity:
    """Regression: a spec compiled from the live model and a spec
    compiled from that model's *packed* artifact payload must be the
    same program — identical codes, bits, range and per-filter scales.
    This is what lets the serving integer backend skip float
    reconstruction entirely."""

    @pytest.fixture(scope="class")
    def quantized_vgg(self):
        model = VGGSmall(
            num_classes=4, image_size=8, width=8, rng=np.random.default_rng(0)
        )
        quantize_model(model, max_bits=4, act_bits=3)
        rng = np.random.default_rng(1)
        calibrate_activations(
            model, [rng.standard_normal((4, 3, 8, 8)) for _ in range(2)]
        )
        model.eval()
        return model

    def test_live_and_export_specs_identical(self, quantized_vgg):
        from repro.quant.export import export_quantized_weights
        from repro.quant.integer import compile_integer_layer_from_export
        from repro.quant.packing import deserialize_export, serialize_export
        from repro.quant.qmodules import quantized_layers

        # Through the packed bytes, not just the in-memory export.
        export = deserialize_export(
            serialize_export(export_quantized_weights(quantized_vgg))
        )
        layers = quantized_layers(quantized_vgg)
        assert set(export.layers) == set(layers)
        for name, layer in layers.items():
            live = compile_integer_layer(layer, name)
            packed = compile_integer_layer_from_export(
                layer, export.layers[name], name
            )
            np.testing.assert_array_equal(live.codes, packed.codes)
            np.testing.assert_array_equal(
                live.bits_per_filter, packed.bits_per_filter
            )
            assert live.weight_lower == packed.weight_lower
            assert live.weight_upper == packed.weight_upper
            assert (live.kind, live.stride, live.padding) == (
                packed.kind, packed.stride, packed.padding,
            )
            assert (live.act_bits, live.act_upper) == (
                packed.act_bits, packed.act_upper,
            )
            np.testing.assert_array_equal(
                live.filter_scales(), packed.filter_scales()
            )

    def test_export_spec_shape_mismatch_raises(self, quantized_vgg):
        from repro.quant.export import export_quantized_weights
        from repro.quant.integer import compile_integer_layer_from_export
        from repro.quant.qmodules import quantized_layers

        export = export_quantized_weights(quantized_vgg)
        layers = quantized_layers(quantized_vgg)
        names = list(layers)
        with pytest.raises(ValueError, match="shape"):
            compile_integer_layer_from_export(
                layers[names[0]], export.layers[names[-1]], names[0]
            )


class TestStrictVerifier:
    """verify_integer_equivalence(strict=True) failures must name the
    first offending layer and its max abs error (satellite of the
    serving-backend PR; mirrors verify_export(strict=True))."""

    def make_model(self):
        model = VGGSmall(
            num_classes=4, image_size=8, width=8, rng=np.random.default_rng(2)
        )
        quantize_model(model, max_bits=4)
        rng = np.random.default_rng(3)
        for layer in [
            m for _n, m in model.named_modules()
            if isinstance(m, (QConv2d, QLinear))
        ]:
            layer.set_bits(rng.integers(1, 5, size=layer.num_filters))
        model.eval()
        return model

    def test_strict_passes_on_clean_model(self, rng):
        from repro.quant.integer import IntegerEquivalenceError

        model = self.make_model()
        ok, diff = verify_integer_equivalence(
            model, rng.standard_normal((2, 3, 8, 8)), strict=True
        )
        assert ok and diff <= 1e-8

    def test_strict_failure_names_layer_and_error(self, rng):
        from repro.quant.integer import IntegerEquivalenceError

        model = self.make_model()
        x = rng.standard_normal((2, 3, 8, 8))
        with pytest.raises(IntegerEquivalenceError) as excinfo:
            # An absurd tolerance forces failure on rounding noise alone;
            # the message must still localize to a concrete layer.
            verify_integer_equivalence(model, x, atol=-1.0, strict=True)
        message = str(excinfo.value)
        assert "max abs error" in message
        assert "offending layer" in message
        # The named layer is a real quantized layer of the model.
        from repro.quant.qmodules import quantized_layers

        assert any(
            f"{name!r}" in message for name in quantized_layers(model)
        )

    def test_diagnose_orders_layers_by_execution(self, rng):
        from repro.quant.integer import diagnose_integer_equivalence
        from repro.quant.qmodules import quantized_layers

        model = self.make_model()
        report = diagnose_integer_equivalence(
            model, rng.standard_normal((2, 3, 8, 8))
        )
        assert [name for name, _err in report] == list(quantized_layers(model))
        assert all(err >= 0.0 for _name, err in report)
