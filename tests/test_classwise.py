"""Tests for repro.analysis.classwise: per-class accuracy analysis."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.analysis.classwise import (
    ClasswiseReport,
    classwise_report,
    kept_importance_per_class,
    per_class_accuracy,
    render_classwise,
)
from repro.core.importance import ImportanceResult
from repro.nn.module import Module
from repro.quant.bitmap import BitWidthMap
from repro.tensor.tensor import Tensor


class FixedPredictor(Module):
    """Predicts a fixed class sequence regardless of input."""

    def __init__(self, predictions, num_classes):
        super().__init__()
        self.predictions = np.asarray(predictions)
        self.num_classes = num_classes
        self._cursor = 0

    def forward(self, x):
        n = x.shape[0]
        logits = np.zeros((n, self.num_classes))
        chunk = self.predictions[self._cursor : self._cursor + n]
        logits[np.arange(n), chunk] = 1.0
        self._cursor += n
        return Tensor(logits)


class TestPerClassAccuracy:
    def test_perfect_predictor(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        model = FixedPredictor(labels, num_classes=3)
        accuracy = per_class_accuracy(
            model, np.zeros((6, 4)), labels, num_classes=3
        )
        np.testing.assert_allclose(accuracy, [1.0, 1.0, 1.0])

    def test_single_class_failure_isolated(self):
        labels = np.array([0, 0, 1, 1])
        model = FixedPredictor(np.array([0, 0, 0, 0]), num_classes=2)
        accuracy = per_class_accuracy(model, np.zeros((4, 4)), labels, num_classes=2)
        np.testing.assert_allclose(accuracy, [1.0, 0.0])

    def test_missing_class_reports_nan(self):
        labels = np.array([0, 0])
        model = FixedPredictor(np.array([0, 0]), num_classes=3)
        accuracy = per_class_accuracy(model, np.zeros((2, 4)), labels, num_classes=3)
        assert accuracy[0] == 1.0
        assert np.isnan(accuracy[1]) and np.isnan(accuracy[2])

    def test_batching_consistent(self):
        labels = np.array([0, 1, 0, 1, 0, 1])
        model = FixedPredictor(labels, num_classes=2)
        accuracy = per_class_accuracy(
            model, np.zeros((6, 4)), labels, num_classes=2, batch_size=2
        )
        np.testing.assert_allclose(accuracy, [1.0, 1.0])

    def test_length_mismatch_rejected(self):
        model = FixedPredictor(np.zeros(2, dtype=int), num_classes=2)
        with pytest.raises(ValueError, match="disagree"):
            per_class_accuracy(model, np.zeros((3, 4)), np.zeros(2), num_classes=2)


class TestKeptImportance:
    def make_importance(self, beta_by_layer, num_classes):
        neuron_scores = OrderedDict(
            (name, beta.sum(axis=0)) for name, beta in beta_by_layer.items()
        )
        return ImportanceResult(
            neuron_scores=neuron_scores,
            beta=OrderedDict(beta_by_layer),
            num_classes=num_classes,
        )

    def test_all_filters_kept(self):
        beta = np.array([[0.5, 0.5], [0.2, 0.8]])  # (M=2, F=2)
        importance = self.make_importance({"fc": beta}, num_classes=2)
        bit_map = BitWidthMap({"fc": np.array([2, 2])}, {"fc": 4})
        kept = kept_importance_per_class(importance, bit_map)
        np.testing.assert_allclose(kept, [1.0, 1.0])

    def test_class_specific_pruning_detected(self):
        # Filter 0 serves class 0 only; filter 1 serves class 1 only.
        beta = np.array([[1.0, 0.0], [0.0, 1.0]])
        importance = self.make_importance({"fc": beta}, num_classes=2)
        bit_map = BitWidthMap({"fc": np.array([0, 4])}, {"fc": 4})  # prune filter 0
        kept = kept_importance_per_class(importance, bit_map)
        np.testing.assert_allclose(kept, [0.0, 1.0])

    def test_conv_beta_reduced_with_max(self):
        # (M=1, F=2, H=1, W=2): filter 0 peaks at 0.9, filter 1 at 0.1.
        beta = np.array([[[[0.9, 0.1]], [[0.1, 0.1]]]])
        importance = self.make_importance({"conv": beta}, num_classes=1)
        bit_map = BitWidthMap({"conv": np.array([4, 0])}, {"conv": 9})
        kept = kept_importance_per_class(importance, bit_map)
        np.testing.assert_allclose(kept, [0.9 / 1.0])

    def test_layer_not_in_map_skipped(self):
        beta = np.array([[1.0, 1.0]])
        importance = self.make_importance(
            {"fc": beta, "other": beta}, num_classes=1
        )
        bit_map = BitWidthMap({"fc": np.array([4, 4])}, {"fc": 4})
        kept = kept_importance_per_class(importance, bit_map)
        np.testing.assert_allclose(kept, [1.0])

    def test_filter_count_mismatch_rejected(self):
        beta = np.array([[1.0, 1.0, 1.0]])
        importance = self.make_importance({"fc": beta}, num_classes=1)
        bit_map = BitWidthMap({"fc": np.array([4, 4])}, {"fc": 4})
        with pytest.raises(ValueError, match="mismatch"):
            kept_importance_per_class(importance, bit_map)


class TestReportAndRender:
    def make_report(self):
        return ClasswiseReport(
            fp_accuracy=np.array([0.9, 0.8, 0.95]),
            quantized_accuracy=np.array([0.85, 0.6, 0.95]),
            kept_importance=np.array([0.9, 0.4, 1.0]),
        )

    def test_drop_and_worst_class(self):
        report = self.make_report()
        np.testing.assert_allclose(report.drop, [0.05, 0.2, 0.0])
        assert report.worst_class() == 1
        assert report.spread() == pytest.approx(0.2)

    def test_render_contains_all_classes(self):
        text = render_classwise(self.make_report())
        assert "kept importance" in text
        assert "worst class: 1" in text
        for cls in range(3):
            assert f"\n{cls} " in text or text.startswith(f"{cls} ")

    def test_end_to_end_on_real_models(self, trained_mlp, tiny_dataset):
        from repro.core.config import CQConfig
        from repro.core.pipeline import ClassBasedQuantizer

        config = CQConfig(
            target_avg_bits=2.0, max_bits=4, act_bits=None,
            samples_per_class=8, refine_epochs=0, seed=0,
        )
        result = ClassBasedQuantizer(config).quantize(trained_mlp, tiny_dataset)
        report = classwise_report(
            trained_mlp,
            result.model,
            tiny_dataset.test_images,
            tiny_dataset.test_labels,
            tiny_dataset.num_classes,
            importance=result.importance,
            bit_map=result.bit_map,
        )
        assert report.num_classes == tiny_dataset.num_classes
        assert np.all(np.isfinite(report.fp_accuracy))
        assert report.kept_importance is not None
        assert np.all(report.kept_importance <= 1.0 + 1e-9)
