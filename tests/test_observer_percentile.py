"""Tests for percentile-based activation ranges and the relative-target search."""

import numpy as np
import pytest

from repro.core.config import CQConfig
from repro.core.search import BitWidthSearch
from repro.quant.observer import MinMaxObserver


class TestPercentileObserver:
    def test_percentile_ignores_outliers(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 1, 10000)
        values[0] = 1000.0  # single outlier
        hard = MinMaxObserver()
        robust = MinMaxObserver(percentile=99.0)
        hard.observe(values)
        robust.observe(values)
        assert hard.max_value == pytest.approx(1000.0)
        assert robust.max_value < 2.0

    def test_percentile_none_is_hard_max(self):
        obs = MinMaxObserver(percentile=None)
        obs.observe(np.array([1.0, 50.0]))
        assert obs.max_value == 50.0

    def test_percentile_100_equals_hard_max(self):
        rng = np.random.default_rng(1)
        values = rng.standard_normal(1000)
        obs = MinMaxObserver(percentile=100.0)
        obs.observe(values)
        assert obs.max_value == pytest.approx(values.max())

    def test_invalid_percentile_raises(self):
        with pytest.raises(ValueError):
            MinMaxObserver(percentile=0.0)
        with pytest.raises(ValueError):
            MinMaxObserver(percentile=150.0)

    def test_running_max_of_percentiles(self):
        obs = MinMaxObserver(percentile=50.0)
        obs.observe(np.array([0.0, 1.0]))  # median 0.5
        obs.observe(np.array([10.0, 10.0]))  # median 10
        assert obs.max_value == pytest.approx(10.0)

    def test_state_roundtrip_keeps_percentile(self):
        obs = MinMaxObserver(percentile=95.0)
        obs.observe(np.arange(100.0))
        other = MinMaxObserver()
        other.load_state_dict(obs.state_dict())
        assert other.percentile == 95.0

    def test_qmodules_default_percentile(self):
        from repro.quant import QLinear

        layer = QLinear(4, 2, act_bits=2, rng=np.random.default_rng(0))
        assert layer.act_observer.percentile == 99.0

    def test_explicit_none_percentile(self):
        from repro.quant import QConv2d

        layer = QConv2d(2, 2, 3, act_bits=2, act_percentile=None,
                        rng=np.random.default_rng(0))
        assert layer.act_observer.percentile is None


class TestRelativeTargets:
    def make_search(self, t1_relative, evaluate_fn, step=0.5):
        scores = {"layer": np.linspace(0.0, 10.0, 50)}
        config = CQConfig(
            target_avg_bits=2.0, max_bits=4, step=step,
            t1=0.5, t1_relative=t1_relative,
        )
        return BitWidthSearch(scores, {"layer": 3}, evaluate_fn, config)

    def test_relative_scales_targets_by_baseline(self):
        """With a 60%-accurate model and t1=0.5, targets start at 30%."""
        result = self.make_search(True, lambda bits: 0.6).run()
        prune_steps = [s for s in result.steps if s.phase == "prune"]
        assert prune_steps
        assert prune_steps[0].target_accuracy == pytest.approx(0.3)

    def test_absolute_keeps_configured_targets(self):
        result = self.make_search(False, lambda bits: 0.6).run()
        prune_steps = [s for s in result.steps if s.phase == "prune"]
        assert prune_steps
        assert prune_steps[0].target_accuracy == pytest.approx(0.5)

    def test_relative_adds_one_baseline_evaluation(self):
        calls = []

        def evaluator(bits):
            calls.append(1)
            return 1.0

        result = self.make_search(True, evaluator).run()
        # baseline + one call per recorded step
        assert len(calls) == len(result.steps) + 1

    def test_relative_budget_still_met(self):
        result = self.make_search(True, lambda bits: 0.05).run()
        assert result.average_bits <= 2.0 + 1e-9

    def test_auto_step_scales_with_scores(self):
        """Auto step keeps evaluation counts bounded for any score scale."""
        for scale in (1.0, 100.0):
            scores = {"layer": np.linspace(0.0, scale, 50)}
            config = CQConfig(target_avg_bits=2.0, max_bits=4, step=None)
            search = BitWidthSearch(scores, {"layer": 3}, lambda bits: 1.0, config)
            assert search.step == pytest.approx(scale / 40.0)
            result = search.run()
            assert result.evaluations < 200

    def test_explicit_step_honoured(self):
        scores = {"layer": np.linspace(0.0, 10.0, 50)}
        config = CQConfig(target_avg_bits=2.0, max_bits=4, step=0.125)
        search = BitWidthSearch(scores, {"layer": 3}, lambda bits: 1.0, config)
        assert search.step == 0.125
