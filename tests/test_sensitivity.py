"""Tests for layer-sensitivity analysis and the concat/stack tensor ops."""

import numpy as np
import pytest

from repro.core.sensitivity import (
    SensitivityResult,
    measure_layer_sensitivity,
    render_sensitivity,
)
from repro.tensor import Tensor, concatenate, stack
from tests.conftest import finite_difference


class TestSensitivity:
    @pytest.fixture(scope="class")
    def measured(self, trained_mlp, tiny_dataset):
        return measure_layer_sensitivity(
            trained_mlp,
            tiny_dataset.val_images[:40],
            tiny_dataset.val_labels[:40],
            bit_widths=(1, 2, 4),
        )

    def test_covers_quantizable_layers(self, measured):
        assert set(measured.accuracy) == {"fc1", "fc2"}

    def test_baseline_is_fp_accuracy(self, measured, trained_mlp, tiny_dataset):
        from repro.tensor import functional as F
        from repro.tensor.tensor import no_grad

        trained_mlp.eval()
        with no_grad():
            logits = trained_mlp(Tensor(tiny_dataset.val_images[:40]))
        expected = F.accuracy(logits, tiny_dataset.val_labels[:40])
        assert measured.baseline == pytest.approx(expected)

    def test_more_bits_never_much_worse(self, measured):
        """4-bit quantization of a single layer should lose little."""
        for name in measured.accuracy:
            assert measured.drop(name, 4) <= measured.drop(name, 1) + 0.05

    def test_drop_helper(self, measured):
        name = next(iter(measured.accuracy))
        assert measured.drop(name, 1) == pytest.approx(
            measured.baseline - measured.accuracy[name][1]
        )

    def test_most_least_sensitive(self, measured):
        most = measured.most_sensitive(1)
        least = measured.least_sensitive(1)
        assert measured.drop(most, 1) >= measured.drop(least, 1)

    def test_model_not_modified(self, trained_mlp, tiny_dataset):
        from repro.quant import QLinear

        measure_layer_sensitivity(
            trained_mlp,
            tiny_dataset.val_images[:20],
            tiny_dataset.val_labels[:20],
            bit_widths=(2,),
        )
        assert not any(isinstance(m, QLinear) for m in trained_mlp.modules())

    def test_empty_bit_widths_raise(self, trained_mlp, tiny_dataset):
        with pytest.raises(ValueError):
            measure_layer_sensitivity(
                trained_mlp, tiny_dataset.val_images[:10],
                tiny_dataset.val_labels[:10], bit_widths=(),
            )

    def test_negative_bits_raise(self, trained_mlp, tiny_dataset):
        with pytest.raises(ValueError):
            measure_layer_sensitivity(
                trained_mlp, tiny_dataset.val_images[:10],
                tiny_dataset.val_labels[:10], bit_widths=(-1,),
            )

    def test_render(self, measured):
        text = render_sensitivity(measured)
        assert "fc1" in text and "baseline" in text


class TestConcatenate:
    def test_values(self, rng):
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((4, 3))
        out = concatenate([Tensor(a), Tensor(b)], axis=0)
        np.testing.assert_array_equal(out.data, np.concatenate([a, b]))

    def test_gradients_split_correctly(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        (out * out).sum().backward()

        def loss():
            return float((np.concatenate([a.data, b.data]) ** 2).sum())

        np.testing.assert_allclose(a.grad, finite_difference(a.data, loss), atol=1e-6)
        np.testing.assert_allclose(b.grad, finite_difference(b.data, loss), atol=1e-6)

    def test_axis_one(self, rng):
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((2, 5))
        out = concatenate([Tensor(a), Tensor(b)], axis=1)
        assert out.shape == (2, 8)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            concatenate([])


class TestStack:
    def test_values(self, rng):
        a, b = rng.standard_normal(4), rng.standard_normal(4)
        out = stack([Tensor(a), Tensor(b)])
        np.testing.assert_array_equal(out.data, np.stack([a, b]))
        assert out.shape == (2, 4)

    def test_gradients(self, rng):
        a = Tensor(rng.standard_normal(4), requires_grad=True)
        b = Tensor(rng.standard_normal(4), requires_grad=True)
        (stack([a, b], axis=0) ** 2).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * a.data)
        np.testing.assert_allclose(b.grad, 2 * b.data)

    def test_new_axis_position(self, rng):
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((2, 3))
        assert stack([Tensor(a), Tensor(b)], axis=1).shape == (2, 2, 3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stack([])
