"""Tests for repro.hw.pareto: frontier extraction, knee, hypervolume."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.pareto import (
    DesignPoint,
    dominated_points,
    hypervolume_2d,
    knee_point,
    pareto_front,
)


def _points(pairs):
    return [DesignPoint(accuracy=a, cost=c, label=str(i)) for i, (a, c) in enumerate(pairs)]


class TestDomination:
    def test_strictly_better_dominates(self):
        better = DesignPoint(accuracy=0.9, cost=1.0)
        worse = DesignPoint(accuracy=0.8, cost=2.0)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_equal_points_do_not_dominate(self):
        a = DesignPoint(accuracy=0.9, cost=1.0)
        b = DesignPoint(accuracy=0.9, cost=1.0)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_tradeoff_points_incomparable(self):
        cheap = DesignPoint(accuracy=0.7, cost=1.0)
        accurate = DesignPoint(accuracy=0.9, cost=3.0)
        assert not cheap.dominates(accurate)
        assert not accurate.dominates(cheap)


class TestParetoFront:
    def test_removes_dominated(self):
        points = _points([(0.9, 1.0), (0.8, 2.0), (0.95, 3.0)])
        front = pareto_front(points)
        assert [p.accuracy for p in front] == [0.9, 0.95]

    def test_sorted_by_cost(self):
        points = _points([(0.95, 3.0), (0.7, 0.5), (0.9, 1.0)])
        front = pareto_front(points)
        costs = [p.cost for p in front]
        assert costs == sorted(costs)

    def test_empty_input(self):
        assert pareto_front([]) == []

    def test_dominated_points_is_complement(self):
        points = _points([(0.9, 1.0), (0.8, 2.0), (0.95, 3.0), (0.5, 5.0)])
        front = pareto_front(points)
        rest = dominated_points(points)
        assert len(front) + len(rest) == len(points)
        assert all(any(q.dominates(p) for q in points) for p in rest)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1),
                st.floats(min_value=0.01, max_value=100),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_front_is_mutually_nondominated(self, pairs):
        front = pareto_front(_points(pairs))
        assert front  # at least one point always survives
        for p in front:
            assert not any(q.dominates(p) for q in front)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1),
                st.floats(min_value=0.01, max_value=100),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_every_point_dominated_by_or_on_front(self, pairs):
        points = _points(pairs)
        front = pareto_front(points)
        ids = {id(p) for p in front}
        for p in points:
            assert id(p) in ids or any(q.dominates(p) for q in front)


def _brute_force_front(points):
    """Reference all-pairs O(n^2) frontier (the pre-optimisation code)."""
    front = [p for p in points if not any(q.dominates(p) for q in points)]
    return sorted(front, key=lambda p: (p.cost, -p.accuracy))


class TestParetoFrontMatchesBruteForce:
    # Coarse grids force coordinate collisions, exercising the
    # duplicate-retention and same-cost-group semantics.
    coarse = st.tuples(
        st.integers(min_value=0, max_value=4).map(lambda v: v / 4.0),
        st.integers(min_value=1, max_value=5).map(float),
    )
    fine = st.tuples(
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0.01, max_value=100),
    )

    @given(st.lists(st.one_of(coarse, fine), max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_identical_to_brute_force(self, pairs):
        points = _points(pairs)
        assert pareto_front(points) == _brute_force_front(points)

    def test_duplicates_all_retained(self):
        points = _points([(0.9, 1.0), (0.9, 1.0), (0.5, 2.0)])
        front = pareto_front(points)
        assert front == [points[0], points[1]]
        # Identity check: both duplicate objects survive, in input order.
        assert front[0] is points[0] and front[1] is points[1]

    def test_same_cost_lower_accuracy_dominated(self):
        points = _points([(0.8, 1.0), (0.9, 1.0)])
        assert pareto_front(points) == [points[1]]

    def test_same_accuracy_higher_cost_dominated(self):
        points = _points([(0.9, 2.0), (0.9, 1.0)])
        assert pareto_front(points) == [points[1]]


class TestKneePoint:
    def test_empty_returns_none(self):
        assert knee_point([]) is None

    def test_single_point_is_its_own_knee(self):
        point = DesignPoint(accuracy=0.9, cost=1.0)
        assert knee_point([point]) is point

    def test_obvious_knee(self):
        # Accuracy saturates after cost 2: the knee is the saturation point.
        points = _points([(0.50, 1.0), (0.90, 2.0), (0.91, 5.0), (0.92, 10.0)])
        knee = knee_point(points)
        assert knee.cost == 2.0

    def test_knee_is_on_front(self):
        points = _points([(0.5, 1.0), (0.9, 2.0), (0.85, 3.0), (0.95, 8.0)])
        knee = knee_point(points)
        assert knee in pareto_front(points)

    def test_two_point_frontier_returns_cheapest(self):
        points = _points([(0.5, 1.0), (0.9, 5.0)])
        knee = knee_point(points)
        assert knee is not None
        assert knee.cost == 1.0

    def test_zero_cost_span_frontier(self):
        # All frontier points share one cost: the frontier collapses to
        # the single best-accuracy point; the chord has no span.
        points = _points([(0.5, 1.0), (0.9, 1.0), (0.7, 1.0)])
        knee = knee_point(points)
        assert knee is not None
        assert knee.accuracy == 0.9 and knee.cost == 1.0

    def test_zero_accuracy_span_frontier(self):
        # Duplicate-coordinate frontier (>2 points after retention):
        # both spans are zero, so the normalisation guard must fire.
        points = _points([(0.8, 2.0)] * 3)
        knee = knee_point(points)
        assert knee is not None
        assert knee.accuracy == 0.8 and knee.cost == 2.0

    def test_degenerate_accuracy_span_multi_cost(self):
        # One accuracy level at several costs: only the cheapest is on
        # the frontier, so the <=2-point branch returns it.
        points = _points([(0.8, 1.0), (0.8, 2.0), (0.8, 3.0)])
        knee = knee_point(points)
        assert knee is not None
        assert knee.cost == 1.0


class TestHypervolume:
    def test_single_point_rectangle(self):
        points = [DesignPoint(accuracy=0.8, cost=2.0)]
        volume = hypervolume_2d(points, reference=(4.0, 0.5))
        assert volume == pytest.approx((4.0 - 2.0) * (0.8 - 0.5))

    def test_dominating_sweep_has_larger_volume(self):
        reference = (10.0, 0.0)
        weak = _points([(0.6, 5.0)])
        strong = _points([(0.6, 5.0), (0.8, 5.0)])  # strictly better point added
        assert hypervolume_2d(strong, reference) > hypervolume_2d(weak, reference)

    def test_points_outside_reference_ignored(self):
        points = [DesignPoint(accuracy=0.4, cost=20.0)]  # costlier than reference
        assert hypervolume_2d(points, reference=(10.0, 0.5)) == 0.0

    def test_union_not_double_counted(self):
        reference = (10.0, 0.0)
        points = _points([(0.5, 2.0), (0.8, 6.0)])
        expected = (10 - 2) * 0.5 + (10 - 6) * (0.8 - 0.5)
        assert hypervolume_2d(points, reference) == pytest.approx(expected)

    def test_reference_dominated_by_no_frontier_point(self):
        # Reference cheaper AND more accurate than everything: no point
        # dominates it, so the covered area is exactly zero.
        points = _points([(0.4, 5.0), (0.6, 8.0)])
        assert hypervolume_2d(points, reference=(2.0, 0.9)) == 0.0

    def test_reference_partially_dominated_mixed_frontier(self):
        # Only the frontier points that dominate the reference count.
        points = _points([(0.8, 2.0), (0.9, 20.0)])  # second is too costly
        volume = hypervolume_2d(points, reference=(10.0, 0.5))
        assert volume == pytest.approx((10.0 - 2.0) * (0.8 - 0.5))

    def test_empty_input_is_zero(self):
        assert hypervolume_2d([], reference=(1.0, 0.0)) == 0.0
