"""Tests for quantized modules, model conversion and STE behaviour."""

import numpy as np
import pytest

from repro.nn import Conv2d, Flatten, Linear, Module, ReLU, Sequential
from repro.quant import (
    MinMaxObserver,
    QConv2d,
    QLinear,
    quantize_model,
    quantized_layers,
    ste_quantize_activations,
    ste_quantize_weights,
)
from repro.quant.qmodules import (
    apply_bit_map,
    calibrate_activations,
    extract_bit_map,
    quantizable_layer_names,
    weight_layer_names,
)
from repro.quant.bitmap import BitWidthMap
from repro.tensor import Tensor


def small_cnn(rng=None):
    rng = rng if rng is not None else np.random.default_rng(0)
    return Sequential(
        Conv2d(3, 4, 3, padding=1, rng=rng),
        ReLU(),
        Conv2d(4, 6, 3, padding=1, rng=rng),
        ReLU(),
        Flatten(),
        Linear(6 * 8 * 8, 12, rng=rng),
        ReLU(),
        Linear(12, 5, rng=rng),
    )


class TestObserver:
    def test_tracks_min_max(self):
        obs = MinMaxObserver()
        obs.observe(np.array([1.0, -3.0]))
        obs.observe(np.array([5.0]))
        assert obs.min_value == -3.0
        assert obs.max_value == 5.0
        assert obs.num_batches == 2

    def test_uninitialized_range_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver().range_for_relu()

    def test_relu_range_clamps_lower_to_zero(self):
        obs = MinMaxObserver()
        obs.observe(np.array([-2.0, 4.0]))
        assert obs.range_for_relu() == (0.0, 4.0)

    def test_relu_range_all_negative(self):
        obs = MinMaxObserver()
        obs.observe(np.array([-2.0, -1.0]))
        assert obs.range_for_relu() == (0.0, 0.0)

    def test_empty_observation_ignored(self):
        obs = MinMaxObserver()
        obs.observe(np.zeros(0))
        assert not obs.initialized

    def test_reset(self):
        obs = MinMaxObserver()
        obs.observe(np.ones(3))
        obs.reset()
        assert not obs.initialized

    def test_state_roundtrip(self):
        obs = MinMaxObserver()
        obs.observe(np.array([1.0, 2.0]))
        other = MinMaxObserver()
        other.load_state_dict(obs.state_dict())
        assert other.max_value == 2.0 and other.num_batches == 1


class TestSTE:
    def test_weight_ste_gradient_is_identity(self, rng):
        w = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        out = ste_quantize_weights(w, np.array([2, 2, 2]))
        out.sum().backward()
        np.testing.assert_array_equal(w.grad, np.ones((3, 4)))

    def test_weight_ste_forward_quantizes(self, rng):
        w = Tensor(rng.standard_normal((2, 10)), requires_grad=True)
        out = ste_quantize_weights(w, np.array([1, 1]))
        assert len(np.unique(np.abs(out.data))) == 1  # binary +/- bound

    def test_activation_ste_clipped_gradient(self):
        x = Tensor(np.array([-1.0, 0.5, 3.0]), requires_grad=True)
        out = ste_quantize_activations(x, 2, 0.0, 1.0)
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 0.0])

    def test_activation_ste_forward_values(self):
        x = Tensor(np.array([0.0, 0.4, 1.0]))
        out = ste_quantize_activations(x, 1, 0.0, 1.0)
        np.testing.assert_array_equal(out.data, [0.0, 0.0, 1.0])

    def test_activation_negative_bits_raise(self):
        with pytest.raises(ValueError):
            ste_quantize_activations(Tensor(np.zeros(2)), -1, 0.0, 1.0)


class TestQModules:
    def test_qconv_from_float_copies_weights(self, rng):
        conv = Conv2d(3, 4, 3, rng=rng)
        qconv = QConv2d.from_float(conv, max_bits=4)
        np.testing.assert_array_equal(qconv.weight.data, conv.weight.data)
        np.testing.assert_array_equal(qconv.bias.data, conv.bias.data)

    def test_qconv_disabled_weight_quant_matches_float(self, rng):
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        qconv = QConv2d.from_float(conv, max_bits=4)
        qconv.weight_quant_enabled = False
        x = Tensor(rng.standard_normal((2, 3, 6, 6)))
        np.testing.assert_allclose(qconv(x).data, conv(x).data)

    def test_qconv_quantized_output_differs(self, rng):
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        qconv = QConv2d.from_float(conv, max_bits=2)
        x = Tensor(rng.standard_normal((1, 3, 6, 6)))
        assert not np.allclose(qconv(x).data, conv(x).data)

    def test_set_bits_validation(self, rng):
        qconv = QConv2d(3, 4, 3, max_bits=4, rng=rng)
        with pytest.raises(ValueError):
            qconv.set_bits(np.array([1, 2, 3]))  # wrong length
        with pytest.raises(ValueError):
            qconv.set_bits(np.array([1, 2, 3, 9]))  # above max
        with pytest.raises(ValueError):
            qconv.set_bits(np.array([1, 2, 3, -1]))  # negative

    def test_zero_bits_filter_produces_bias_only(self, rng):
        qconv = QConv2d(2, 2, 3, padding=1, max_bits=4, rng=rng)
        qconv.set_bits(np.array([0, 4]))
        x = Tensor(rng.standard_normal((1, 2, 5, 5)))
        out = qconv(x)
        # channel 0 weights are pruned: output == bias everywhere
        np.testing.assert_allclose(out.data[0, 0], qconv.bias.data[0])

    def test_weights_per_filter(self, rng):
        qconv = QConv2d(3, 4, 5, rng=rng)
        assert qconv.weights_per_filter == 3 * 25
        qfc = QLinear(7, 3, rng=rng)
        assert qfc.weights_per_filter == 7

    def test_act_quant_applied_in_eval_after_observation(self, rng):
        qfc = QLinear(4, 2, max_bits=4, act_bits=1, rng=rng)
        x = Tensor(np.abs(rng.standard_normal((5, 4))))
        qfc(x)  # training: observes
        qfc.eval()
        out_input_effect = qfc(x)
        # with 1-bit activations, input effectively snaps to {0, max}
        assert qfc.act_observer.initialized

    def test_act_quant_disabled_when_none(self, rng):
        qfc = QLinear(4, 2, max_bits=4, act_bits=None, rng=rng)
        assert not qfc.act_quant_enabled

    def test_ste_training_updates_underlying_weights(self, rng):
        qfc = QLinear(4, 3, max_bits=2, rng=rng)
        x = Tensor(rng.standard_normal((6, 4)))
        before = qfc.weight.data.copy()
        out = qfc(x)
        out.sum().backward()
        assert qfc.weight.grad is not None
        qfc.weight.data -= 0.1 * qfc.weight.grad
        assert not np.allclose(qfc.weight.data, before)


class TestModelConversion:
    def test_weight_layer_names_in_order(self):
        model = small_cnn()
        assert weight_layer_names(model) == ["0", "2", "5", "7"]

    def test_quantizable_skips_first_and_last(self):
        model = small_cnn()
        assert quantizable_layer_names(model) == ["2", "5"]

    def test_quantizable_respects_model_override(self):
        model = small_cnn()
        model.quantization_skip = ("0",)
        assert quantizable_layer_names(model) == ["2", "5", "7"]

    def test_too_few_layers_raises(self, rng):
        model = Sequential(Linear(4, 4, rng=rng), Linear(4, 2, rng=rng))
        with pytest.raises(ValueError):
            quantizable_layer_names(model)

    def test_quantize_model_replaces_layers(self):
        model = small_cnn()
        quantize_model(model, max_bits=4)
        layers = quantized_layers(model)
        assert set(layers) == {"2", "5"}
        assert isinstance(layers["2"], QConv2d)
        assert isinstance(layers["5"], QLinear)

    def test_quantize_model_preserves_weights(self):
        model = small_cnn()
        original = model[2].weight.data.copy()
        quantize_model(model, max_bits=4)
        np.testing.assert_array_equal(quantized_layers(model)["2"].weight.data, original)

    def test_quantize_model_idempotent(self):
        model = small_cnn()
        quantize_model(model, max_bits=4)
        quantize_model(model, max_bits=4)  # second call is a no-op
        assert len(quantized_layers(model)) == 2

    def test_first_and_last_remain_float(self):
        model = small_cnn()
        quantize_model(model, max_bits=4)
        assert type(model[0]) is Conv2d
        assert type(model[7]) is Linear

    def test_extract_and_apply_bit_map_roundtrip(self):
        model = small_cnn()
        quantize_model(model, max_bits=4)
        layers = quantized_layers(model)
        layers["2"].set_bits(np.array([0, 1, 2, 3, 4, 4]))
        bit_map = extract_bit_map(model)

        other = small_cnn()
        quantize_model(other, max_bits=4)
        apply_bit_map(other, bit_map)
        np.testing.assert_array_equal(
            quantized_layers(other)["2"].bits, np.array([0, 1, 2, 3, 4, 4])
        )

    def test_apply_bit_map_unknown_layer_raises(self):
        model = small_cnn()
        quantize_model(model, max_bits=4)
        bogus = BitWidthMap({"nope": np.array([1])}, {"nope": 1})
        with pytest.raises(KeyError):
            apply_bit_map(model, bogus)

    def test_extract_bit_map_no_quant_layers_raises(self):
        with pytest.raises(ValueError):
            extract_bit_map(small_cnn())

    def test_calibration_initializes_observers(self, rng):
        model = small_cnn()
        quantize_model(model, max_bits=4, act_bits=2)
        images = rng.standard_normal((4, 3, 8, 8))
        calibrate_activations(model, [images])
        for layer in quantized_layers(model).values():
            assert layer.act_observer.initialized
            assert not layer.calibrating

    def test_calibration_restores_training_mode(self, rng):
        model = small_cnn()
        quantize_model(model, max_bits=4, act_bits=2)
        model.train()
        calibrate_activations(model, [rng.standard_normal((2, 3, 8, 8))])
        assert model.training

    def test_eval_forward_deterministic_after_calibration(self, rng):
        model = small_cnn()
        quantize_model(model, max_bits=3, act_bits=2)
        calibrate_activations(model, [rng.standard_normal((4, 3, 8, 8))])
        model.eval()
        x = Tensor(rng.standard_normal((2, 3, 8, 8)))
        out1 = model(x).data.copy()
        out2 = model(x).data.copy()
        np.testing.assert_array_equal(out1, out2)
