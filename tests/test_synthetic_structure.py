"""Tests for the *structural* properties of SynthCIFAR that CQ relies on.

DESIGN.md §2 claims the generator produces class-private, class-shared
and global patterns so that trained filters specialise to one, a few or
all classes. These tests verify that claim directly on the generator
(prototype geometry) and on a trained network (importance-score spread).
"""

import numpy as np
import pytest

from repro.data.synthetic import SynthCIFARConfig, _build_prototypes, make_synth_cifar


class TestPrototypeGeometry:
    @pytest.fixture(scope="class")
    def prototypes(self):
        cfg = SynthCIFARConfig(num_classes=8, image_size=12, seed=5)
        rng = np.random.default_rng(cfg.seed)
        return _build_prototypes(cfg, rng), cfg

    def test_unit_norm(self, prototypes):
        protos, _ = prototypes
        norms = np.sqrt((protos ** 2).sum(axis=(1, 2, 3)))
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_neighbours_more_similar_than_distant(self):
        """Shared patterns bridge class m and m+1 (the Figure-1 overlap):
        adjacent prototypes correlate more than offset-3 pairs (which
        share neither a neighbour pattern nor — with 4 global patterns —
        a global one). Averaged over seeds to beat sampling noise."""
        adjacent_means = []
        distant_means = []
        for seed in range(6):
            cfg = SynthCIFARConfig(num_classes=8, image_size=12, seed=seed)
            protos = _build_prototypes(cfg, np.random.default_rng(cfg.seed))
            m = cfg.num_classes
            gram = np.einsum("ichw,jchw->ij", protos, protos)
            adjacent_means.append(np.mean([gram[i, (i + 1) % m] for i in range(m)]))
            distant_means.append(np.mean([gram[i, (i + 3) % m] for i in range(m)]))
        assert np.mean(adjacent_means) > np.mean(distant_means) + 0.02

    def test_all_pairs_positively_coupled_by_global_patterns(self, prototypes):
        """Global patterns give every pair some baseline similarity."""
        protos, cfg = prototypes
        m = cfg.num_classes
        gram = np.einsum("ichw,jchw->ij", protos, protos)
        off_diagonal = gram[~np.eye(m, dtype=bool)]
        assert off_diagonal.mean() > 0.0

    def test_distinct_prototypes(self, prototypes):
        protos, cfg = prototypes
        m = cfg.num_classes
        gram = np.einsum("ichw,jchw->ij", protos, protos)
        off_diagonal = gram[~np.eye(m, dtype=bool)]
        assert off_diagonal.max() < 0.99  # no two classes collapse


class TestSampleStatistics:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_synth_cifar(
            num_classes=6, image_size=12, train_per_class=30, val_per_class=10,
            test_per_class=10, seed=2,
        )

    def test_within_class_similarity_exceeds_between(self, dataset):
        images = dataset.train_images
        labels = dataset.train_labels
        flat = images.reshape(len(images), -1)
        flat = flat / np.linalg.norm(flat, axis=1, keepdims=True)
        gram = flat @ flat.T
        same = labels[:, None] == labels[None, :]
        np.fill_diagonal(same, False)
        within = gram[same].mean()
        between = gram[~same & ~np.eye(len(labels), dtype=bool)].mean()
        assert within > between + 0.1

    def test_jitter_produces_intra_class_variation(self, dataset):
        images = dataset.train_images
        labels = dataset.train_labels
        class0 = images[labels == 0]
        pairwise_mse = ((class0[0] - class0[1]) ** 2).mean()
        assert pairwise_mse > 1e-4  # samples are not identical

    def test_splits_are_distinct_samples(self, dataset):
        assert not np.array_equal(dataset.train_images[:10], dataset.val_images[:10])


class TestImportanceSpread:
    def test_trained_model_has_class_specialised_neurons(self):
        """After training, some neurons must serve few classes and some
        many — the spectrum Figure 2 shows. This is the load-bearing
        property of the synthetic substitute."""
        from repro.core.importance import ImportanceScorer
        from repro.data import ArrayDataset, DataLoader
        from repro.models.mlp import MLP
        from repro.optim import SGD
        from repro.train import Trainer

        dataset = make_synth_cifar(
            num_classes=6, image_size=12, train_per_class=30, val_per_class=10,
            test_per_class=5, seed=3,
        )
        model = MLP(3 * 12 * 12, (32, 24, 16), 6, rng=np.random.default_rng(0))
        loader = DataLoader(
            ArrayDataset(dataset.train_images, dataset.train_labels),
            batch_size=30, shuffle=True, seed=0,
        )
        Trainer(model, SGD(model.parameters(), lr=0.05, momentum=0.9)).fit(
            loader, epochs=12
        )
        importance = ImportanceScorer(model).score(dataset.class_batches(8, "val"))
        gamma = np.concatenate(
            [scores.reshape(-1) for scores in importance.neuron_scores.values()]
        )
        # Spread: neither all-important nor all-dead.
        assert gamma.max() > 0.6 * dataset.num_classes
        assert gamma.std() > 0.3
        assert (gamma < 0.5 * dataset.num_classes).any()
