"""Bit-exactness contract of the incremental search evaluator.

The cached engine (:class:`repro.core.evaluator.IncrementalEvaluator`)
must return *exactly* the accuracy the naive re-quantize-everything
closure returns, for any sequence of bit assignments — including the
revisits Phase 2 of the threshold search produces. These tests drive
both evaluators through randomized seeded trajectories on all three
model families (chain MLP/VGG and the residual ResNet, whose
``segment_modules()`` block-boundary protocol makes prefix resumption
work across residual blocks) and compare with ``==``, not
``pytest.approx``.
"""

import numpy as np
import pytest

from repro.core.config import CQConfig
from repro.core.evaluator import (
    EvalStats,
    IncrementalEvaluator,
    make_naive_weight_quant_evaluator,
)
from repro.core.search import BitWidthSearch, assign_bits, make_weight_quant_evaluator
from repro.models.mlp import MLP
from repro.models.resnet import ResNet20
from repro.models.vgg import VGGSmall
from repro.nn import Module

MAX_BITS = 4


def build(family: str, seed: int = 0):
    """(model, images, labels) for one family, small enough for CI."""
    rng = np.random.default_rng(seed)
    if family == "mlp":
        model = MLP(3 * 8 * 8, (16, 12, 10), 4, rng=np.random.default_rng(seed + 1))
        images = rng.standard_normal((32, 3, 8, 8))
    elif family == "vgg":
        model = VGGSmall(
            num_classes=4, image_size=8, width=4, rng=np.random.default_rng(seed + 1)
        )
        images = rng.standard_normal((16, 3, 8, 8))
    elif family == "resnet":
        model = ResNet20(num_classes=4, base_width=4, rng=np.random.default_rng(seed + 1))
        images = rng.standard_normal((8, 3, 8, 8))
    else:  # pragma: no cover
        raise ValueError(family)
    labels = rng.integers(0, 4, len(images))
    return model, images, labels


def random_threshold_trajectory(rng, num_thresholds=MAX_BITS, length=12, top=4.0):
    """Non-decreasing threshold vectors walking up the score axis, with
    revisits of earlier states (Phase-2 squeeze re-evaluates prefixes)."""
    thresholds = np.zeros(num_thresholds)
    history = [thresholds.copy()]
    for _ in range(length):
        k = int(rng.integers(0, num_thresholds))
        thresholds[k:] = np.maximum(thresholds[k:], thresholds[k] + rng.uniform(0, top / 6))
        history.append(thresholds.copy())
        if rng.random() < 0.3 and len(history) > 2:
            history.append(history[int(rng.integers(0, len(history)))].copy())
    return history


@pytest.mark.parametrize("family", ["mlp", "vgg", "resnet"])
def test_cached_matches_naive_on_threshold_trajectories(family):
    model, images, labels = build(family)
    cached = IncrementalEvaluator(model, images, labels, MAX_BITS)
    naive = make_naive_weight_quant_evaluator(model, images, labels, MAX_BITS)
    rng = np.random.default_rng(7)
    scores = {
        name: rng.random(layer.num_filters) * 4.0
        for name, layer in cached.layers.items()
    }
    for trajectory_seed in range(3):
        walk_rng = np.random.default_rng(100 + trajectory_seed)
        for thresholds in random_threshold_trajectory(walk_rng):
            bits = assign_bits(scores, thresholds)
            assert cached(bits) == naive(bits)


@pytest.mark.parametrize("family", ["mlp", "vgg", "resnet"])
def test_cached_matches_naive_on_random_assignments(family):
    """Adversarial non-monotone assignments (not threshold-induced)."""
    model, images, labels = build(family, seed=3)
    cached = IncrementalEvaluator(model, images, labels, MAX_BITS)
    naive = make_naive_weight_quant_evaluator(model, images, labels, MAX_BITS)
    rng = np.random.default_rng(11)
    names = list(cached.layers)
    history = []
    for step in range(25):
        if history and step % 5 == 4:
            bits = history[int(rng.integers(0, len(history)))]  # revisit
        else:
            bits = {
                name: rng.integers(0, MAX_BITS + 1, cached.layers[name].num_filters)
                for name in names
            }
        history.append(bits)
        assert cached(bits) == naive(bits)


@pytest.mark.parametrize("family", ["mlp", "vgg", "resnet"])
def test_full_search_is_bit_exact_with_naive_evaluator(family):
    """An entire BitWidthSearch (both phases) records identical traces."""
    model, images, labels = build(family, seed=5)
    cached = make_weight_quant_evaluator(model, images, labels, MAX_BITS)
    naive = make_weight_quant_evaluator(model, images, labels, MAX_BITS, incremental=False)
    rng = np.random.default_rng(13)
    scores = {
        name: rng.random(layer.num_filters) * 4.0
        for name, layer in cached.layers.items()
    }
    weights_per_filter = {
        name: layer.weights_per_filter for name, layer in cached.layers.items()
    }
    config = CQConfig(target_avg_bits=1.5, max_bits=MAX_BITS, act_bits=None)
    result_cached = BitWidthSearch(scores, weights_per_filter, cached, config).run()
    result_naive = BitWidthSearch(scores, weights_per_filter, naive, config).run()

    np.testing.assert_array_equal(result_cached.thresholds, result_naive.thresholds)
    assert result_cached.final_accuracy == result_naive.final_accuracy
    assert result_cached.evaluations == result_naive.evaluations
    assert [s.accuracy for s in result_cached.steps] == [
        s.accuracy for s in result_naive.steps
    ]
    assert [s.avg_bits for s in result_cached.steps] == [
        s.avg_bits for s in result_naive.steps
    ]
    # The search attached the evaluator's cost counters to the result.
    assert isinstance(result_cached.eval_stats, EvalStats)
    assert result_cached.eval_stats.evaluations == result_cached.evaluations
    assert result_naive.eval_stats is None


def test_cache_layers_can_be_disabled_without_changing_results():
    """Every cache-toggle combination returns identical accuracies."""
    model, images, labels = build("vgg", seed=9)
    evaluators = [
        IncrementalEvaluator(
            model, images, labels, MAX_BITS,
            weight_cache=wc, prefix_cache=pc, memoize=memo,
        )
        for wc in (False, True)
        for pc in (False, True)
        for memo in (False, True)
    ]
    rng = np.random.default_rng(17)
    names = list(evaluators[0].layers)
    for _ in range(8):
        bits = {
            name: rng.integers(0, MAX_BITS + 1, evaluators[0].layers[name].num_filters)
            for name in names
        }
        accuracies = {evaluator(bits) for evaluator in evaluators}
        assert len(accuracies) == 1


def test_squeeze_style_revisits_hit_the_memo():
    """Re-evaluating a previously seen assignment does no forward work."""
    model, images, labels = build("mlp")
    cached = IncrementalEvaluator(model, images, labels, MAX_BITS)
    rng = np.random.default_rng(23)
    bits = {
        name: rng.integers(0, MAX_BITS + 1, layer.num_filters)
        for name, layer in cached.layers.items()
    }
    first = cached(bits)
    forwards_before = cached.stats.full_forwards + cached.stats.partial_forwards
    # Equal values in a fresh dict with fresh arrays must still hit.
    revisit = {name: np.array(value) for name, value in bits.items()}
    assert cached(revisit) == first
    assert cached.stats.memo_hits == 1
    assert cached.stats.full_forwards + cached.stats.partial_forwards == forwards_before


def test_partial_mappings_do_not_alias_in_the_memo():
    """The evaluator is stateful for layers omitted from the mapping
    (like the naive closure); the memo must key on the full applied
    state, not just the provided layers — a partial mapping revisited
    after *other* layers changed is a different arrangement."""
    model, images, labels = build("mlp")
    cached = IncrementalEvaluator(model, images, labels, MAX_BITS)
    naive = make_naive_weight_quant_evaluator(model, images, labels, MAX_BITS)
    rng = np.random.default_rng(29)
    first, second = list(cached.layers)[:2]
    partial = {first: rng.integers(0, MAX_BITS + 1, cached.layers[first].num_filters)}
    assert cached(partial) == naive(partial)
    other = {second: rng.integers(0, MAX_BITS, cached.layers[second].num_filters)}
    assert cached(other) == naive(other)
    # Same partial mapping, different residual state for `second`.
    assert cached(partial) == naive(partial)


def test_memo_hits_keep_statefulness_for_later_partial_mappings():
    """A memo hit answers without touching the surrogate, but it still
    moves the *logical* state a later partial mapping builds on — the
    next miss must reconcile the surrogate before its forward."""
    model, images, labels = build("mlp", seed=3)
    cached = IncrementalEvaluator(model, images, labels, MAX_BITS)
    naive = make_naive_weight_quant_evaluator(model, images, labels, MAX_BITS)
    rng = np.random.default_rng(43)
    L, M = list(cached.layers)[:2]
    x = rng.integers(0, MAX_BITS + 1, cached.layers[L].num_filters)
    y = rng.integers(0, MAX_BITS + 1, cached.layers[L].num_filters)
    a = rng.integers(0, MAX_BITS + 1, cached.layers[M].num_filters)
    b = rng.integers(0, MAX_BITS + 1, cached.layers[M].num_filters)
    for query in ({L: x, M: a}, {L: y}, {L: x}, {M: b}):
        assert cached(query) == naive(query)
    assert cached.stats.memo_hits == 1  # {L: x} after {L: x, M: a}


def test_segment_trace_per_topology():
    """All three families trace: MLP/VGG as leaf chains, ResNet as a
    block-granular segment chain (one segment per BasicBlock)."""
    for family in ("mlp", "vgg", "resnet"):
        model, images, labels = build(family)
        evaluator = IncrementalEvaluator(model, images, labels, MAX_BITS)
        assert evaluator._trace_ok, family
        assert evaluator.stats.num_segments == len(evaluator._segments) > 0
    # ResNet: stem (conv0/bn0/relu0) + 9 blocks + avgpool + fc.
    assert evaluator.stats.num_segments == 14
    block_segments = {
        pos for name, pos in evaluator._segment_of.items() if name.startswith("blocks.")
    }
    assert len(block_segments) == 9  # each block's layers share one segment


class _OpaqueResNet(Module):
    """A residual model *without* the segment protocol: the leaf-level
    fallback trace must reject it and the evaluator must fall back to
    full forwards (while staying bit-exact)."""

    def __init__(self, inner):
        super().__init__()
        self.inner = inner

    def forward(self, x):
        return self.inner(x)


def test_undeclared_residual_topology_falls_back_to_full_forwards():
    model, images, labels = build("resnet")
    evaluator = IncrementalEvaluator(_OpaqueResNet(model), images, labels, MAX_BITS)
    assert not evaluator._trace_ok
    naive = make_naive_weight_quant_evaluator(
        _OpaqueResNet(model), images, labels, MAX_BITS
    )
    rng = np.random.default_rng(31)
    for _ in range(4):
        bits = {
            name: rng.integers(0, MAX_BITS + 1, layer.num_filters)
            for name, layer in evaluator.layers.items()
        }
        assert evaluator(bits) == naive(bits)
    assert evaluator.stats.partial_forwards == 0
    assert evaluator.stats.full_forwards == 4


def test_partial_forwards_skip_unchanged_prefix():
    """Changing only the last layer's bits resumes deep in the chain."""
    model, images, labels = build("vgg")
    cached = IncrementalEvaluator(model, images, labels, MAX_BITS)
    naive = make_naive_weight_quant_evaluator(model, images, labels, MAX_BITS)
    names = list(cached.layers)
    base = {
        name: np.full(cached.layers[name].num_filters, MAX_BITS, dtype=np.int64)
        for name in names
    }
    assert cached(base) == naive(base)
    assert cached.stats.full_forwards == 1
    last = names[-1]
    for bits_value in (3, 2, 1):
        trial = dict(base)
        trial[last] = np.full(cached.layers[last].num_filters, bits_value, dtype=np.int64)
        assert cached(trial) == naive(trial)
    assert cached.stats.partial_forwards == 3
    # Each partial forward skipped every quantized layer before the last.
    assert cached.stats.prefix_layers_skipped == 3 * (len(names) - 1)
    # Only the changed layer was ever re-quantized after the first pass,
    # and incrementally (patched, not from scratch).
    assert cached.stats.layers_quantized == len(names)
    assert cached.stats.layers_patched == 3
    expected_filters = cached.stats.num_filters + 3 * cached.layers[last].num_filters
    assert cached.stats.filters_quantized == expected_filters


def test_resnet_partial_forwards_resume_at_block_boundaries():
    """Changing bits only inside the last block resumes past every
    earlier block, skipping all quantized layers before it."""
    model, images, labels = build("resnet")
    cached = IncrementalEvaluator(model, images, labels, MAX_BITS)
    naive = make_naive_weight_quant_evaluator(model, images, labels, MAX_BITS)
    names = list(cached.layers)
    base = {
        name: np.full(cached.layers[name].num_filters, MAX_BITS, dtype=np.int64)
        for name in names
    }
    assert cached(base) == naive(base)
    assert cached.stats.full_forwards == 1
    last_block = max(
        int(name.split(".")[1]) for name in names if name.startswith("blocks.")
    )
    in_last = [name for name in names if name.startswith(f"blocks.{last_block}.")]
    for bits_value in (3, 2, 1):
        trial = dict(base)
        for name in in_last:
            trial[name] = np.full(
                cached.layers[name].num_filters, bits_value, dtype=np.int64
            )
        assert cached(trial) == naive(trial)
    assert cached.stats.partial_forwards == 3
    # Every quantized layer outside the last block sat in a skipped segment.
    assert cached.stats.prefix_layers_skipped == 3 * (len(names) - len(in_last))
    # Stem (3 segments) + the 8 earlier blocks were skipped each time.
    assert cached.stats.segments_skipped == 3 * (3 + last_block)


@pytest.mark.parametrize("family", ["mlp", "vgg", "resnet"])
def test_eval_stats_accounting_identities(family):
    """Counter bookkeeping holds exactly on random trajectories:

    * every query is a memo hit, a full forward or a partial forward;
    * with the weight cache on, each executed quantized layer makes one
      weight request, so requests + prefix-skipped layers account for
      every forward's layers;
    * segment skips only come from partial forwards and never exceed
      the prefix length.
    """
    model, images, labels = build(family, seed=21)
    cached = IncrementalEvaluator(model, images, labels, MAX_BITS)
    naive = make_naive_weight_quant_evaluator(model, images, labels, MAX_BITS)
    rng = np.random.default_rng(37)
    scores = {
        name: rng.random(layer.num_filters) * 4.0
        for name, layer in cached.layers.items()
    }
    history = []
    for thresholds in random_threshold_trajectory(np.random.default_rng(41), length=10):
        bits = assign_bits(scores, thresholds)
        history.append(bits)
        assert cached(bits) == naive(bits)
        if history and rng.random() < 0.25:
            revisit = history[int(rng.integers(0, len(history)))]
            assert cached(revisit) == naive(revisit)

    stats = cached.stats
    forwards = stats.full_forwards + stats.partial_forwards
    assert stats.evaluations == stats.memo_hits + forwards
    assert stats.layers_executed + stats.prefix_layers_skipped == (
        forwards * stats.num_layers
    )
    # With the weight cache on, every executed layer makes exactly one
    # weight lookup — the two counters cross-check each other.
    assert stats.layer_requests == stats.layers_executed
    assert stats.num_segments > 0 and stats.partial_forwards > 0
    assert 0 < stats.segments_skipped <= stats.partial_forwards * (
        stats.num_segments - 1
    )
    assert stats.naive_layer_executions == stats.evaluations * stats.num_layers
    assert stats.layer_execution_reduction > 1.0


def test_weight_cache_reuses_quantizations_across_revisits():
    model, images, labels = build("mlp")
    cached = IncrementalEvaluator(model, images, labels, MAX_BITS, memoize=False)
    names = list(cached.layers)
    variants = []
    for value in (4, 3, 2):
        variants.append({
            name: np.full(cached.layers[name].num_filters, value, dtype=np.int64)
            for name in names
        })
    for bits in variants + variants:  # second pass revisits all three
        cached(bits)
    # Memoization is off, so revisits re-run forwards — but every weight
    # quantization in the second pass comes from the cache.
    assert cached.stats.evaluations == 6
    assert cached.stats.filters_quantized == 3 * cached.stats.num_filters
    assert cached.stats.quantization_reduction >= 2.0
