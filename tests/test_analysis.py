"""Tests for the analysis/reporting helpers behind the figures."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.analysis import (
    ascii_bars,
    ascii_histogram,
    ascii_table,
    bit_width_distribution,
    layer_bit_summary,
    score_histogram,
    sorted_score_curve,
    sorted_score_curves,
)
from repro.analysis.arrangement import distribution_fractions
from repro.analysis.histograms import histogram_skewness, score_histograms
from repro.analysis.render import format_bit_distribution
from repro.core.importance import ImportanceResult
from repro.quant import BitWidthMap


class TestHistograms:
    def test_score_histogram_range(self):
        counts, edges = score_histogram(np.array([0.5, 5.0, 9.5]), num_classes=10, bins=10)
        assert counts.sum() == 3
        assert edges[0] == 0.0 and edges[-1] == 10.0

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            score_histogram(np.zeros(3), 10, bins=0)

    def test_score_histograms_reduce_conv_layers(self):
        importance = ImportanceResult(
            neuron_scores=OrderedDict(
                [("conv", np.ones((3, 2, 2)) * 4.0), ("fc", np.array([1.0, 9.0]))]
            ),
            beta=OrderedDict(),
            num_classes=10,
        )
        histograms = score_histograms(importance, bins=10)
        counts_conv, _ = histograms["conv"]
        assert counts_conv.sum() == 3  # one entry per filter, not per neuron

    def test_skewness_sign(self):
        left_heavy = np.array([10, 3, 1, 0, 0])  # mass at low scores
        right_heavy = left_heavy[::-1].copy()
        edges = np.linspace(0, 5, 6)
        assert histogram_skewness(left_heavy, edges) > 0
        assert histogram_skewness(right_heavy, edges) < 0

    def test_skewness_empty(self):
        assert histogram_skewness(np.zeros(3), np.linspace(0, 3, 4)) == 0.0

    def test_skewness_uniform_zero(self):
        counts = np.array([5, 5, 5, 5])
        assert histogram_skewness(counts, np.linspace(0, 4, 5)) == pytest.approx(0.0)


class TestArrangement:
    def test_sorted_curve_ascending(self, rng):
        curve = sorted_score_curve(rng.standard_normal(20))
        assert np.all(np.diff(curve) >= 0)

    def test_sorted_curves_per_layer(self, rng):
        curves = sorted_score_curves({"a": rng.random(5), "b": rng.random(3)})
        assert set(curves) == {"a", "b"}

    def test_bit_width_distribution_delegates_to_histogram(self):
        bit_map = BitWidthMap({"l": np.array([0, 4])}, {"l": 10})
        distribution = bit_width_distribution(bit_map, 4)
        assert distribution[0] == 10 and distribution[4] == 10

    def test_distribution_fractions(self):
        fractions = distribution_fractions({0: 25, 4: 75})
        assert fractions[0] == pytest.approx(0.25)

    def test_distribution_fractions_empty_raises(self):
        with pytest.raises(ValueError):
            distribution_fractions({})

    def test_layer_bit_summary_contents(self):
        scores = {"l": np.array([1.0, 5.0, 9.0])}
        bit_map = BitWidthMap({"l": np.array([0, 2, 4])}, {"l": 3})
        summary = layer_bit_summary(scores, bit_map, np.array([2.0, 4.0, 6.0, 8.0]))
        info = summary["l"]
        assert info["num_filters"] == 3
        assert info["filters_per_bit"] == {0: 1, 2: 1, 4: 1}
        np.testing.assert_array_equal(info["sorted_scores"], [1.0, 5.0, 9.0])


class TestRender:
    def test_table_alignment(self):
        text = ascii_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = text.split("\n")
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_table_title(self):
        text = ascii_table(["x"], [[1]], title="My Table")
        assert text.startswith("My Table")

    def test_table_cell_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [[1]])

    def test_table_float_formatting(self):
        text = ascii_table(["v"], [[0.123456]])
        assert "0.1235" in text

    def test_bars_scale_to_max(self):
        text = ascii_bars(["a", "b"], [1.0, 2.0], width=10)
        lines = text.split("\n")
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_bars_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0, 2.0])

    def test_bars_all_zero(self):
        text = ascii_bars(["a"], [0.0])
        assert "#" not in text

    def test_histogram_requires_consistent_edges(self):
        with pytest.raises(ValueError):
            ascii_histogram([1, 2], [0.0, 1.0])

    def test_histogram_renders(self):
        text = ascii_histogram([1, 3], [0.0, 1.0, 2.0], title="H")
        assert text.startswith("H")
        assert "#" in text

    def test_format_bit_distribution(self):
        text = format_bit_distribution({0: 5, 2: 10}, title="bits")
        assert "0-bit" in text and "2-bit" in text
