"""Unit tests for the autograd engine: every op's gradient is checked
against central finite differences, plus graph-shape and mode tests."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled, tensor, zeros, ones, arange, randn
from tests.conftest import finite_difference


def check_grad(build_loss, *params, atol=1e-6):
    """Assert autograd gradient == finite-difference gradient for each param."""
    loss = build_loss()
    loss.backward()
    for param in params:
        assert param.grad is not None, "parameter received no gradient"
        expected = finite_difference(param.data, lambda: float(build_loss().data))
        np.testing.assert_allclose(param.grad, expected, atol=atol)


class TestConstruction:
    def test_tensor_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_integer_data_promoted_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype == np.float64

    def test_bool_data_promoted_to_float(self):
        t = Tensor(np.array([True, False]))
        assert t.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_constructors(self):
        assert zeros(2, 3).shape == (2, 3)
        assert ones((4,)).data.sum() == 4.0
        assert arange(5).shape == (5,)
        assert randn(2, 2, rng=np.random.default_rng(0)).shape == (2, 2)

    def test_item_scalar(self):
        assert Tensor([[2.5]]).item() == 2.5

    def test_item_non_scalar_raises(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad
        assert b._backward is None

    def test_len_and_repr(self):
        t = Tensor([1.0, 2.0])
        assert len(t) == 2
        assert "Tensor" in repr(t)


class TestElementwiseGradients:
    def test_add(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        check_grad(lambda: (a + b).sum(), a, b)

    def test_add_broadcast_rows(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4,)), requires_grad=True)
        check_grad(lambda: (a + b).sum(), a, b)

    def test_add_broadcast_scalar_shape(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((1, 1)), requires_grad=True)
        check_grad(lambda: (a + b).sum(), a, b)

    def test_sub(self, rng):
        a = Tensor(rng.standard_normal(5), requires_grad=True)
        b = Tensor(rng.standard_normal(5), requires_grad=True)
        check_grad(lambda: (a - b).sum(), a, b)

    def test_rsub(self, rng):
        a = Tensor(rng.standard_normal(5), requires_grad=True)
        check_grad(lambda: (3.0 - a).sum(), a)

    def test_mul(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        check_grad(lambda: (a * b).sum(), a, b)

    def test_mul_broadcast(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((3,)), requires_grad=True)
        check_grad(lambda: (a * b).sum(), a, b)

    def test_div(self, rng):
        a = Tensor(rng.standard_normal((3,)), requires_grad=True)
        b = Tensor(rng.uniform(0.5, 2.0, 3), requires_grad=True)
        check_grad(lambda: (a / b).sum(), a, b)

    def test_rdiv(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, 4), requires_grad=True)
        check_grad(lambda: (1.0 / a).sum(), a)

    def test_neg(self, rng):
        a = Tensor(rng.standard_normal(4), requires_grad=True)
        check_grad(lambda: (-a).sum(), a)

    def test_pow(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, 4), requires_grad=True)
        check_grad(lambda: (a ** 3).sum(), a)

    def test_pow_negative_exponent(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, 4), requires_grad=True)
        check_grad(lambda: (a ** -0.5).sum(), a, atol=1e-5)

    def test_pow_non_scalar_raises(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])


class TestUnaryGradients:
    def test_exp(self, rng):
        a = Tensor(rng.standard_normal(4), requires_grad=True)
        check_grad(lambda: a.exp().sum(), a, atol=1e-5)

    def test_log(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, 4), requires_grad=True)
        check_grad(lambda: a.log().sum(), a)

    def test_sqrt(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, 4), requires_grad=True)
        check_grad(lambda: a.sqrt().sum(), a)

    def test_abs(self, rng):
        a = Tensor(rng.standard_normal(6) + 0.5, requires_grad=True)
        check_grad(lambda: a.abs().sum(), a)

    def test_tanh(self, rng):
        a = Tensor(rng.standard_normal(4), requires_grad=True)
        check_grad(lambda: a.tanh().sum(), a)

    def test_sigmoid(self, rng):
        a = Tensor(rng.standard_normal(4), requires_grad=True)
        check_grad(lambda: a.sigmoid().sum(), a)

    def test_relu_values(self):
        a = Tensor([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(a.relu().data, [0.0, 0.0, 2.0])

    def test_relu_grad_zero_in_negative_region(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        a.relu().sum().backward()
        np.testing.assert_array_equal(a.grad, [0.0, 1.0])

    def test_clip_gradient_masks_outside(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(a.grad, [0.0, 1.0, 0.0])

    def test_clip_values(self):
        a = Tensor([-2.0, 0.5, 2.0])
        np.testing.assert_array_equal(a.clip(-1.0, 1.0).data, [-1.0, 0.5, 1.0])


class TestReductionGradients:
    def test_sum_all(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        check_grad(lambda: a.sum(), a)

    def test_sum_axis(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        check_grad(lambda: (a.sum(axis=0) ** 2).sum(), a)

    def test_sum_axis_keepdims(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        check_grad(lambda: (a.sum(axis=1, keepdims=True) ** 2).sum(), a)

    def test_sum_tuple_axis(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        check_grad(lambda: (a.sum(axis=(0, 2)) ** 2).sum(), a)

    def test_mean_all(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        check_grad(lambda: a.mean() * 7.0, a)

    def test_mean_axis(self, rng):
        a = Tensor(rng.standard_normal((2, 5)), requires_grad=True)
        check_grad(lambda: (a.mean(axis=1) ** 2).sum(), a)

    def test_max_all(self, rng):
        a = Tensor(rng.standard_normal(10), requires_grad=True)
        check_grad(lambda: a.max() * 2.0, a)

    def test_max_axis(self, rng):
        a = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        check_grad(lambda: (a.max(axis=1) ** 2).sum(), a)

    def test_max_ties_split_gradient(self):
        a = Tensor([3.0, 3.0, 1.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5, 0.0])

    def test_min(self, rng):
        a = Tensor(rng.standard_normal(6), requires_grad=True)
        out = a.min()
        assert float(out.data) == pytest.approx(a.data.min())

    def test_var_matches_numpy(self, rng):
        data = rng.standard_normal((4, 6))
        a = Tensor(data)
        np.testing.assert_allclose(a.var(axis=0).data, data.var(axis=0))

    def test_var_gradient(self, rng):
        a = Tensor(rng.standard_normal(5), requires_grad=True)
        check_grad(lambda: a.var() * 3.0, a)


class TestShapeOps:
    def test_reshape_roundtrip_grad(self, rng):
        a = Tensor(rng.standard_normal((2, 6)), requires_grad=True)
        check_grad(lambda: (a.reshape(3, 4) ** 2).sum(), a)

    def test_reshape_with_tuple(self):
        a = Tensor(np.zeros((2, 6)))
        assert a.reshape((4, 3)).shape == (4, 3)

    def test_flatten_keeps_batch(self):
        a = Tensor(np.zeros((5, 2, 3, 4)))
        assert a.flatten().shape == (5, 24)

    def test_transpose_default_reverses(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)))
        assert a.transpose().shape == (4, 3, 2)

    def test_transpose_grad(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        check_grad(lambda: (a.T ** 2).sum(), a)

    def test_getitem_int_row(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        check_grad(lambda: (a[1] ** 2).sum(), a)

    def test_getitem_fancy_index(self, rng):
        a = Tensor(rng.standard_normal((5, 4)), requires_grad=True)
        idx = (np.array([0, 2, 2]), np.array([1, 3, 3]))
        check_grad(lambda: (a[idx] ** 2).sum(), a)

    def test_getitem_duplicate_indices_accumulate(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = a[np.array([0, 0, 1])]
        b.sum().backward()
        np.testing.assert_array_equal(a.grad, [2.0, 1.0])

    def test_pad2d_shape(self):
        a = Tensor(np.zeros((1, 2, 4, 4)))
        assert a.pad2d(2).shape == (1, 2, 8, 8)

    def test_pad2d_zero_is_identity(self):
        a = Tensor(np.ones((1, 1, 2, 2)))
        assert a.pad2d(0) is a

    def test_pad2d_grad(self, rng):
        a = Tensor(rng.standard_normal((1, 1, 3, 3)), requires_grad=True)
        check_grad(lambda: (a.pad2d(1) ** 2).sum(), a)


class TestMatmul:
    def test_matmul_values(self, rng):
        a_data = rng.standard_normal((3, 4))
        b_data = rng.standard_normal((4, 2))
        out = Tensor(a_data) @ Tensor(b_data)
        np.testing.assert_allclose(out.data, a_data @ b_data)

    def test_matmul_grads(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
        check_grad(lambda: ((a @ b) ** 2).sum(), a, b)

    def test_matmul_rejects_1d(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros(3)) @ Tensor(np.zeros((3, 2)))


class TestGraphMechanics:
    def test_diamond_graph_accumulates(self, rng):
        a = Tensor(rng.standard_normal(4), requires_grad=True)
        b = a * 2.0
        c = a * 3.0
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 5.0))

    def test_reused_tensor_many_times(self):
        a = Tensor([2.0], requires_grad=True)
        loss = a * a * a  # a^3
        loss.backward()
        np.testing.assert_allclose(a.grad, [12.0])

    def test_backward_accumulates_across_calls(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_backward_nonscalar_requires_grad_arg(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(a.grad, [3.0, 30.0])

    def test_backward_grad_shape_mismatch(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 3.0).backward(np.zeros(3))

    def test_intermediate_grads_retained(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2.0
        c = b * 3.0
        c.backward()
        np.testing.assert_allclose(b.grad, [3.0])

    def test_long_chain(self, rng):
        a = Tensor(rng.standard_normal(3), requires_grad=True)
        x = a
        for _ in range(50):
            x = x * 1.01
        x.sum().backward()
        np.testing.assert_allclose(a.grad, np.full(3, 1.01 ** 50), rtol=1e-10)

    def test_no_grad_disables_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2.0
        assert not b.requires_grad
        assert b._backward is None

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()

    def test_grad_not_tracked_for_constants(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([5.0])
        (a * b).sum().backward()
        assert b.grad is None

    def test_identity_op(self):
        a = Tensor([1.0], requires_grad=True)
        b = a.retain_graph_identity()
        b.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_comparison_returns_numpy(self):
        a = Tensor([1.0, 3.0])
        result = a > 2.0
        assert isinstance(result, np.ndarray)
        np.testing.assert_array_equal(result, [False, True])
