"""Tests for weight initialisers (repro.nn.init) and misc utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import init
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.utils.misc import clone_module, count_parameters, set_global_seed


class TestFanInOut:
    def test_linear_shape(self):
        assert init._fan_in_out((8, 3)) == (3, 8)

    def test_conv_shape(self):
        # (out=16, in=4, k=3x3): fan_in = 4*9, fan_out = 16*9.
        assert init._fan_in_out((16, 4, 3, 3)) == (36, 144)

    def test_unsupported_shape_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            init._fan_in_out((4,))


class TestInitializers:
    @pytest.mark.parametrize(
        "fn", [init.kaiming_normal, init.kaiming_uniform, init.xavier_normal, init.xavier_uniform]
    )
    def test_deterministic_given_seed(self, fn):
        a = fn((16, 8), np.random.default_rng(7))
        b = fn((16, 8), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_kaiming_normal_std_scaling(self):
        rng = np.random.default_rng(0)
        weights = init.kaiming_normal((2000, 50), rng)
        expected_std = np.sqrt(2.0 / 50)
        assert weights.std() == pytest.approx(expected_std, rel=0.05)

    def test_kaiming_uniform_bound(self):
        rng = np.random.default_rng(0)
        weights = init.kaiming_uniform((200, 50), rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 50)
        assert np.abs(weights).max() <= bound

    def test_fan_out_mode_differs(self):
        rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(0)
        fan_in = init.kaiming_normal((100, 25), rng_a, mode="fan_in")
        fan_out = init.kaiming_normal((100, 25), rng_b, mode="fan_out")
        # Same draws, different scale (fan 25 vs 100).
        assert fan_in.std() > fan_out.std()

    def test_xavier_symmetric_in_fans(self):
        rng = np.random.default_rng(0)
        a = init.xavier_uniform((30, 70), rng)
        bound = np.sqrt(6.0 / 100)
        assert np.abs(a).max() <= bound

    def test_bias_bound_follows_fan_in(self):
        rng = np.random.default_rng(0)
        bias = init.uniform_bias((8, 16), rng)
        assert bias.shape == (8,)
        assert np.abs(bias).max() <= 1.0 / 4.0  # 1/sqrt(16)

    def test_bias_size_override(self):
        rng = np.random.default_rng(0)
        assert init.uniform_bias((8, 16), rng, size=3).shape == (3,)


class TestMiscUtils:
    def test_set_global_seed_reproducible(self):
        gen_a = set_global_seed(123)
        draws_a = (np.random.rand(3).tolist(), gen_a.random(3).tolist())
        gen_b = set_global_seed(123)
        draws_b = (np.random.rand(3).tolist(), gen_b.random(3).tolist())
        assert draws_a == draws_b

    def test_clone_module_independent_weights(self):
        original = Linear(4, 3, rng=np.random.default_rng(0))
        clone = clone_module(original)
        clone.weight.data += 1.0
        assert not np.allclose(original.weight.data, clone.weight.data)

    def test_clone_drops_grads_and_hooks(self):
        original = Linear(4, 3, rng=np.random.default_rng(0))
        original.weight.grad = np.ones_like(original.weight.data)
        original.register_forward_hook(lambda m, out: None)
        clone = clone_module(original)
        assert clone.weight.grad is None
        assert not clone._forward_hooks
        # Original untouched.
        assert original.weight.grad is not None
        assert original._forward_hooks

    def test_count_parameters(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        assert count_parameters(layer) == 4 * 3 + 3
