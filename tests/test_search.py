"""Tests for the bit-width threshold search (Sec. III-C)."""

import numpy as np
import pytest

from repro.core.config import CQConfig
from repro.core.search import BitWidthSearch, SearchStep, assign_bits


class TestAssignBits:
    def test_basic_grouping(self):
        scores = {"layer": np.array([0.5, 1.5, 2.5, 3.5, 4.5])}
        thresholds = np.array([1.0, 2.0, 3.0, 4.0])
        bits = assign_bits(scores, thresholds)["layer"]
        np.testing.assert_array_equal(bits, [0, 1, 2, 3, 4])

    def test_score_equal_to_threshold_included(self):
        scores = {"layer": np.array([2.0])}
        bits = assign_bits(scores, np.array([1.0, 2.0, 3.0]))["layer"]
        assert bits[0] == 2  # p_1 and p_2 are both <= score

    def test_all_zero_thresholds_gives_max_bits(self):
        scores = {"layer": np.array([0.0, 5.0])}
        bits = assign_bits(scores, np.zeros(4))["layer"]
        np.testing.assert_array_equal(bits, [4, 4])

    def test_thresholds_above_all_scores_prune_everything(self):
        scores = {"layer": np.array([1.0, 2.0])}
        bits = assign_bits(scores, np.full(4, 100.0))["layer"]
        np.testing.assert_array_equal(bits, [0, 0])

    def test_unsorted_thresholds_raise(self):
        with pytest.raises(ValueError):
            assign_bits({"a": np.array([1.0])}, np.array([2.0, 1.0]))

    def test_multiple_layers_share_thresholds(self):
        scores = {"a": np.array([0.5]), "b": np.array([2.5])}
        bits = assign_bits(scores, np.array([1.0, 2.0]))
        assert bits["a"][0] == 0
        assert bits["b"][0] == 2


def make_search(evaluate_fn, config=None, scores=None):
    scores = scores if scores is not None else {
        "layer1": np.linspace(0.0, 10.0, 20),
        "layer2": np.linspace(0.0, 8.0, 10),
    }
    weights = {name: 5 for name in scores}
    config = config or CQConfig(target_avg_bits=2.0, max_bits=4, step=0.5)
    return BitWidthSearch(scores, weights, evaluate_fn, config)


class TestBitWidthSearch:
    def test_budget_respected_with_tolerant_evaluator(self):
        search = make_search(lambda bits: 1.0)  # accuracy never drops
        result = search.run()
        assert result.average_bits <= 2.0

    def test_budget_respected_with_fragile_evaluator(self):
        """Accuracy collapses immediately -> thresholds stop early, squeeze
        phase must still reach the budget."""
        search = make_search(lambda bits: 0.0)
        result = search.run()
        assert result.average_bits <= 2.0

    def test_thresholds_non_decreasing(self):
        rng = np.random.default_rng(0)
        search = make_search(lambda bits: float(rng.random()))
        result = search.run()
        assert np.all(np.diff(result.thresholds) >= -1e-12)

    def test_trivial_budget_no_search(self):
        config = CQConfig(target_avg_bits=4.0, max_bits=4, step=0.5)
        search = make_search(lambda bits: 1.0, config=config)
        result = search.run()
        # initial avg == max_bits == budget: nothing to do
        assert result.average_bits == pytest.approx(4.0)
        np.testing.assert_array_equal(result.thresholds, np.zeros(4))

    def test_trace_records_every_evaluation(self):
        calls = []

        def evaluator(bits):
            calls.append(1)
            return 1.0

        result = make_search(evaluator).run()
        assert result.evaluations == len(calls)
        assert len(result.steps) >= result.evaluations - 1  # final extra eval allowed

    def test_trace_phases_ordered(self):
        result = make_search(lambda bits: 0.0).run()
        phases = [step.phase for step in result.steps]
        if "squeeze" in phases:
            first_squeeze = phases.index("squeeze")
            assert all(p == "squeeze" for p in phases[first_squeeze:])

    def test_prune_phase_respects_targets(self):
        """With an evaluator that tracks the pruned fraction, p_1 stops
        once accuracy < T1."""
        scores = {"layer": np.linspace(0, 10, 100)}
        weights = {"layer": 1}
        config = CQConfig(target_avg_bits=0.5, max_bits=4, step=0.5, t1=0.5, decay=0.8)

        def evaluator(bits):
            pruned = float((bits["layer"] == 0).mean())
            return 1.0 - pruned  # accuracy falls as pruning grows

        result = BitWidthSearch(scores, weights, evaluator, config).run()
        prune_steps = [s for s in result.steps if s.phase == "prune" and s.k == 1]
        assert prune_steps, "p_1 was never moved"
        # all but the last step must satisfy the target
        for step in prune_steps[:-1]:
            assert step.accuracy >= step.target_accuracy or step.avg_bits <= 0.5

    def test_target_decay_between_thresholds(self):
        result = make_search(lambda bits: 0.0).run()
        targets = {}
        for step in result.steps:
            targets.setdefault(step.k, step.target_accuracy)
        ks = sorted(targets)
        for k1, k2 in zip(ks, ks[1:]):
            assert targets[k2] == pytest.approx(targets[k1] * 0.8 ** (k2 - k1))

    def test_final_accuracy_populated(self):
        result = make_search(lambda bits: 0.75).run()
        assert result.final_accuracy == pytest.approx(0.75)

    def test_bit_map_layers_match_scores(self):
        result = make_search(lambda bits: 1.0).run()
        assert set(result.bit_map.layers()) == {"layer1", "layer2"}

    def test_empty_scores_raise(self):
        with pytest.raises(ValueError):
            BitWidthSearch({}, {}, lambda bits: 1.0, CQConfig())

    def test_non_1d_scores_raise(self):
        with pytest.raises(ValueError):
            BitWidthSearch(
                {"a": np.zeros((2, 2))}, {"a": 1}, lambda bits: 1.0, CQConfig()
            )

    def test_zero_budget_prunes_everything(self):
        config = CQConfig(target_avg_bits=0.0, max_bits=4, step=1.0)
        search = make_search(lambda bits: 1.0, config=config)
        result = search.run()
        assert result.average_bits == pytest.approx(0.0)

    def test_trace_for_threshold_helper(self):
        result = make_search(lambda bits: 0.0).run()
        for k in range(1, 5):
            steps = result.trace_for_threshold(k)
            assert all(step.k == k for step in steps)

    def test_identical_scores_single_group(self):
        """All filters identical -> they all land in the same bit group."""
        scores = {"layer": np.full(10, 5.0)}
        weights = {"layer": 2}
        config = CQConfig(target_avg_bits=3.0, max_bits=4, step=0.5)
        result = BitWidthSearch(scores, weights, lambda bits: 1.0, config).run()
        assert len(np.unique(result.bit_map["layer"])) == 1

    def test_search_deterministic(self):
        r1 = make_search(lambda bits: float(np.sum(bits["layer1"])) % 2).run()
        r2 = make_search(lambda bits: float(np.sum(bits["layer1"])) % 2).run()
        np.testing.assert_array_equal(r1.thresholds, r2.thresholds)


class TestSearchConfigValidation:
    def test_bad_t1(self):
        with pytest.raises(ValueError):
            CQConfig(t1=0.0)

    def test_bad_decay(self):
        with pytest.raises(ValueError):
            CQConfig(decay=1.5)

    def test_bad_step(self):
        with pytest.raises(ValueError):
            CQConfig(step=0.0)

    def test_bad_budget(self):
        with pytest.raises(ValueError):
            CQConfig(target_avg_bits=9.0, max_bits=4)

    def test_bad_max_bits(self):
        with pytest.raises(ValueError):
            CQConfig(max_bits=0)

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            CQConfig(alpha=-0.1)
