"""Tests for repro.serve.pool: round-robin fan-out, lifecycle, stats,
autoscaling and the chaos-kill recovery path."""

import time

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.serve import (
    ArtifactCache,
    AutoscaleDecider,
    AutoscalePolicy,
    AutoscalingEnginePool,
    EngineDied,
    QueueFull,
    ReplayRun,
    ServingEnginePool,
    ShutdownTimeout,
    compile_artifact,
    verify_replay,
)


def make_toy_model(scale: float = 1.0) -> Module:
    model = Linear(3, 2, rng=np.random.default_rng(0))
    model.weight.data[...] = scale * np.arange(6, dtype=np.float64).reshape(2, 3)
    model.bias.data[...] = 0.0
    return model


class SlowModel(Module):
    def __init__(self, delay_s: float = 0.4):
        super().__init__()
        self.delay_s = delay_s

    def forward(self, x):
        time.sleep(self.delay_s)
        return x


class TestPoolBasics:
    def test_needs_models(self):
        with pytest.raises(ValueError, match="at least one model"):
            ServingEnginePool([])

    def test_rejects_shared_model_objects(self):
        model = make_toy_model()
        with pytest.raises(ValueError, match="distinct"):
            ServingEnginePool([model, model])

    def test_round_robin_assignment(self):
        models = [make_toy_model() for _ in range(3)]
        with ServingEnginePool(models, batch_window_s=0.0) as pool:
            assert len(pool) == 3
            pendings = [pool.submit(np.ones(3)) for _ in range(7)]
            for pending in pendings:
                pending.result(timeout=10)
            assert [p.engine_index for p in pendings] == [0, 1, 2, 0, 1, 2, 0]
            per_engine = pool.per_engine_stats()
            assert [stats.requests for stats in per_engine] == [3, 2, 2]

    def test_identical_models_answer_identically(self):
        models = [make_toy_model() for _ in range(2)]
        x = np.arange(3, dtype=np.float64)
        with ServingEnginePool(models, batch_window_s=0.0) as pool:
            first = pool.predict(x, timeout=10)
            second = pool.predict(x, timeout=10)
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(first, x @ models[0].weight.data.T)

    def test_combined_stats_sum_over_engines(self):
        models = [make_toy_model() for _ in range(2)]
        with ServingEnginePool(models, batch_window_s=0.0) as pool:
            for _ in range(6):
                pool.predict(np.ones(3), timeout=10)
            stats = pool.stats
        assert stats.requests == 6 and stats.completed == 6
        assert stats.forwards == sum(s.forwards for s in pool.per_engine_stats())

    def test_input_dtype_exposed(self):
        with ServingEnginePool([make_toy_model()]) as pool:
            assert pool.input_dtype == np.float64


class TestPoolLifecycle:
    def test_deferred_start_and_drain(self):
        models = [make_toy_model() for _ in range(2)]
        pool = ServingEnginePool(models, batch_window_s=0.0, autostart=False)
        pendings = [pool.submit(np.full(3, i)) for i in range(4)]
        pool.start()
        pool.drain(timeout=10)
        assert all(pending.done() for pending in pendings)
        pool.close()

    def test_close_timeout_names_laggards(self):
        pool = ServingEnginePool(
            [SlowModel(0.4), SlowModel(0.4)], batch_window_s=0.0
        )
        pendings = [pool.submit(np.ones(3)) for _ in range(2)]
        with pytest.raises(ShutdownTimeout, match="engines"):
            pool.close(drain=True, timeout=0.02)
        for pending in pendings:
            pending.result(timeout=10)
        pool.close(drain=True, timeout=10)  # patient close succeeds

    def test_close_is_idempotent(self):
        pool = ServingEnginePool([make_toy_model()])
        pool.close()
        pool.close()

    def test_queue_full_tries_next_engine_before_shedding(self):
        """The pool's effective budget is the sum of its engines': a
        full engine is skipped for a live one with headroom, and
        QueueFull propagates only when every live engine shed."""
        models = [make_toy_model() for _ in range(2)]
        pool = ServingEnginePool(
            models, batch_window_s=0.0, autostart=False, max_pending=2
        )
        engines = pool.engines
        # Fill engine 0's budget out-of-band; the pool rotation starts
        # there, so each pool submit must skip past it to engine 1.
        direct = [engines[0].submit(np.ones(3)) for _ in range(2)]
        routed = [pool.submit(np.ones(3)) for _ in range(2)]
        assert [p.engine_index for p in routed] == [1, 1]
        # Now every live engine is at budget: the pool sheds.
        with pytest.raises(QueueFull, match="max_pending=2"):
            pool.submit(np.ones(3))
        # Per-engine `rejected` counts every engine-level shed, even
        # ones a rotation peer later absorbed: engine 0 shed each of
        # the two skipped submits plus the final one, engine 1 only
        # the final one.
        assert [s.rejected for s in pool.per_engine_stats()] == [3, 1]
        pool.start()
        pool.drain(timeout=10)
        recovered = pool.submit(np.ones(3))  # budget restored
        recovered.result(timeout=10)
        pool.close(timeout=10)
        assert all(p.done() for p in direct + routed)
        assert pool.stats.requests == 5 and pool.stats.rejected == 4

    def test_close_sweeps_past_a_failing_engine(self):
        """Regression: one engine's close() raising a non-timeout error
        must not abort the sweep — the later engines still close (no
        leaked worker threads) and the failure is re-raised after."""
        models = [make_toy_model() for _ in range(3)]
        pool = ServingEnginePool(models, batch_window_s=0.0)
        engines = pool.engines
        victim = engines[1]
        real_close = victim.close

        def exploding_close(drain=True, timeout=None):
            raise RuntimeError("boom")

        victim.close = exploding_close
        with pytest.raises(RuntimeError, match="boom"):
            pool.close(drain=True, timeout=10)
        # The engines after the failing one were still shut down.
        assert not engines[0]._thread.is_alive()
        assert not engines[2]._thread.is_alive()
        victim.close = real_close
        pool.close(drain=True, timeout=10)
        assert not victim._thread.is_alive()

    def test_drain_expired_deadline_names_unreached_engines(self):
        """Regression: an already-expired pool deadline used to turn
        into zero-second engine waits, misattributing the timeout to
        whichever engine was visited next. It now raises immediately,
        naming the engines that were never waited on."""
        pool = ServingEnginePool(
            [SlowModel(0.2), SlowModel(0.2)], batch_window_s=0.0
        )
        pendings = [pool.submit(np.ones(3)) for _ in range(2)]
        with pytest.raises(TimeoutError, match=r"engines \[0, 1\]"):
            pool.drain(timeout=0.0)
        for pending in pendings:
            pending.result(timeout=10)
        pool.close(drain=True, timeout=10)

    def test_close_expired_deadline_names_unreached_engines(self):
        pool = ServingEnginePool(
            [SlowModel(0.2), SlowModel(0.2)], batch_window_s=0.0
        )
        pendings = [pool.submit(np.ones(3)) for _ in range(2)]
        with pytest.raises(ShutdownTimeout, match=r"never reached"):
            pool.close(drain=True, timeout=0.0)
        for pending in pendings:
            pending.result(timeout=10)
        pool.close(drain=True, timeout=10)


class TestAutoscaleDecider:
    def make(self, **overrides):
        policy = dict(
            min_engines=1,
            max_engines=4,
            scale_up_depth=8.0,
            scale_down_depth=1.0,
            cooldown_s=1.0,
            interval_s=0.01,
        )
        policy.update(overrides)
        return AutoscaleDecider(AutoscalePolicy(**policy))

    def test_scales_up_above_threshold(self):
        assert self.make().observe(8.0, engines=1, now_s=0.0) == "up"

    def test_scales_down_below_threshold(self):
        assert self.make().observe(0.5, engines=2, now_s=0.0) == "down"

    def test_band_between_thresholds_is_inert(self):
        decider = self.make()
        for depth in (2.0, 5.0, 7.9):
            assert decider.observe(depth, engines=2, now_s=0.0) is None

    def test_respects_bounds(self):
        assert self.make().observe(50.0, engines=4, now_s=0.0) is None
        assert self.make().observe(0.0, engines=1, now_s=0.0) is None

    def test_cooldown_blocks_consecutive_events(self):
        decider = self.make(cooldown_s=1.0)
        assert decider.observe(10.0, engines=1, now_s=0.0) == "up"
        assert decider.observe(10.0, engines=2, now_s=0.5) is None
        assert decider.observe(10.0, engines=2, now_s=1.1) == "up"

    def test_no_flapping_under_oscillating_depth(self):
        """A queue oscillating inside the hysteresis band must produce
        zero scale events no matter how fast it swings."""
        decider = self.make()
        depths = [1.5, 7.5] * 50  # just inside both thresholds
        actions = [
            decider.observe(depth, engines=2, now_s=0.01 * step)
            for step, depth in enumerate(depths)
        ]
        assert actions == [None] * len(depths)

    def test_oscillation_across_thresholds_is_rate_limited_by_cooldown(self):
        """Even swinging *across* both thresholds, the cooldown caps the
        event rate — 100 violent samples in one cooldown window may
        produce at most one event after the first."""
        decider = self.make(cooldown_s=1.0)
        depths = [0.0, 20.0] * 50
        actions = [
            decider.observe(depth, engines=2, now_s=0.005 * step)
            for step, depth in enumerate(depths)
        ]
        events = [action for action in actions if action is not None]
        assert len(events) == 1

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="hysteresis"):
            AutoscalePolicy(scale_up_depth=2.0, scale_down_depth=2.0)
        with pytest.raises(ValueError, match="min_engines"):
            AutoscalePolicy(min_engines=0)
        with pytest.raises(ValueError, match="max_engines"):
            AutoscalePolicy(min_engines=3, max_engines=2)


@pytest.fixture
def mlp_artifact(quantized_mlp_factory):
    model, manifest = quantized_mlp_factory()
    return compile_artifact(model, manifest)


#: A policy whose supervisor is effectively inert (60 s interval), so
#: tests drive _consider_scaling()/_sweep_deaths() by hand and the
#: scaling sequence is fully deterministic.
MANUAL = dict(cooldown_s=0.0, interval_s=60.0)


class TestAutoscalingPool:
    def test_scales_up_under_queue_depth_and_back_down(self, mlp_artifact):
        cache = ArtifactCache()
        policy = AutoscalePolicy(
            min_engines=1, max_engines=3, scale_up_depth=4.0,
            scale_down_depth=1.0, **MANUAL
        )
        pool = AutoscalingEnginePool(
            mlp_artifact, cache, policy=policy,
            batch_window_s=0.0, autostart=False,
        )
        assert cache.active_leases() == 1
        pendings = [pool.submit(np.zeros((3, 8, 8))) for _ in range(12)]
        pool._consider_scaling()  # depth 12 >= 4
        assert len(pool) == 2 and cache.active_leases() == 2
        pool._consider_scaling()  # depth 6 >= 4
        assert len(pool) == 3 and cache.active_leases() == 3
        pool._consider_scaling()  # at max_engines: no change
        assert len(pool) == 3
        pool.start()
        pool.drain(timeout=10)
        assert all(pending.done() for pending in pendings)
        pool._consider_scaling()  # depth 0 <= 1
        pool._consider_scaling()
        assert len(pool) == 1  # back at min_engines
        assert cache.active_leases() == 1  # retired engines released
        pool._consider_scaling()  # at min_engines: no change
        assert len(pool) == 1
        actions = [event.action for event in pool.scale_events()]
        assert actions == ["up", "up", "down", "down"]
        stats = pool.stats
        assert stats.scale_ups == 2 and stats.scale_downs == 2
        assert stats.completed == 12  # retired engines' traffic still counts
        assert pool.peak_engines == 3
        pool.close(drain=True, timeout=10)
        assert cache.active_leases() == 0
        assert cache.stats.leases == cache.stats.releases == 3

    def test_retired_engines_drain_before_release(self, mlp_artifact):
        """A scale-down must never drop accepted work: the retired
        engine answers its queue before its lease is returned."""
        cache = ArtifactCache()
        # scale_down_depth must clear the victim's 3 still-queued
        # requests (mean depth (0 + 3) / 2 = 1.5 over 2 engines), or
        # the "down" decision races against the victim draining first.
        policy = AutoscalePolicy(
            min_engines=1, max_engines=2, scale_up_depth=4.0,
            scale_down_depth=1.6, **MANUAL
        )
        pool = AutoscalingEnginePool(
            mlp_artifact, cache, policy=policy,
            batch_window_s=0.0, autostart=False,
        )
        first = [pool.submit(np.zeros((3, 8, 8))) for _ in range(4)]
        pool._consider_scaling()  # up to 2 engines (depth 4 >= 4.0)
        # Load the *newest* engine (the scale-down victim) directly.
        victim_engine = pool.engines[-1]
        queued = [victim_engine.submit(np.zeros((3, 8, 8))) for _ in range(3)]
        pool.start()
        for pending in first:
            pending.result(timeout=10)
        pool._consider_scaling()  # down: retires the newest engine
        assert len(pool) == 1
        assert all(pending.done() for pending in queued)  # drained, not dropped
        pool.close(drain=True, timeout=10)
        assert cache.active_leases() == 0

    def test_supervisor_scales_in_real_time(self, mlp_artifact):
        """End-to-end: the supervisor thread itself observes depth and
        scales up, with no manual driving."""
        cache = ArtifactCache()
        policy = AutoscalePolicy(
            min_engines=1, max_engines=2, scale_up_depth=3.0,
            scale_down_depth=0.5, cooldown_s=0.0, interval_s=0.005,
        )
        pool = AutoscalingEnginePool(
            mlp_artifact, cache, policy=policy,
            batch_window_s=0.0, autostart=False,
        )
        # Queue work while the engines are stopped, then start only the
        # supervisor: depth stays high (nothing drains it) until the
        # supervisor observes it and scales up on its own.
        pendings = [pool.submit(np.zeros((3, 8, 8))) for _ in range(16)]
        pool._start_supervisor()
        deadline = time.monotonic() + 10
        while pool.stats.scale_ups == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert pool.stats.scale_ups >= 1
        pool.start()
        for pending in pendings:
            pending.result(timeout=10)
        pool.close(drain=True, timeout=10)
        assert cache.active_leases() == 0
        assert cache.stats.leases == cache.stats.releases


class TestChaosKill:
    def wait_for_death(self, engine, timeout_s: float = 5.0) -> None:
        deadline = time.monotonic() + timeout_s
        while not engine.worker_died:
            if time.monotonic() > deadline:
                raise AssertionError("killed worker did not die in time")
            time.sleep(0.005)

    def test_killed_engine_is_replaced_and_requests_redispatched(
        self, mlp_artifact
    ):
        """The full resilience story: kill → death detected → lease
        released → replacement leased → orphans re-dispatched → every
        request completes bit-exact. Lease accounting balances."""
        cache = ArtifactCache()
        policy = AutoscalePolicy(min_engines=1, max_engines=2, **MANUAL)
        pool = AutoscalingEnginePool(
            mlp_artifact, cache, policy=policy,
            batch_window_s=0.0, record_batches=True,
        )
        killed = pool.chaos_kill()
        assert killed == 0
        self.wait_for_death(pool.engines[0])
        # The dead engine is still in the rotation (the supervisor is
        # inert): these requests land on its queue and become orphans.
        inputs = np.random.default_rng(0).standard_normal((6, 3, 8, 8))
        pendings = [pool.submit(x) for x in inputs]
        pool._sweep_deaths()
        outputs = [pending.result(timeout=10) for pending in pendings]
        # Identity read after completion: the replacement answered.
        assert {pending.engine_index for pending in pendings} == {1}
        stats = pool.stats
        assert stats.engine_deaths == 1 and stats.redispatched == 6
        actions = [event.action for event in pool.scale_events()]
        assert actions == ["death", "replace"]
        fates = {
            record[0]: fate["fate"]
            for record, fate in zip(
                pool.engine_records(), pool.engine_lifetimes_s()
            )
        }
        assert fates[0] == "died"
        # Lease accounting: the dead engine's lease was released, the
        # replacement's is active.
        assert cache.stats.leases == 2
        assert cache.active_leases() == 1
        # Bit-exact parity of the rescued requests, via the recorded
        # batches of every engine the pool ever ran.
        class _PoolSession:  # verify_replay's minimal session surface
            input_dtype = pool.input_dtype
            engine_records = staticmethod(pool.engine_records)

        run = ReplayRun(
            payload={},
            outputs=np.stack(outputs),
            request_ids=[pending.request_id for pending in pendings],
            engine_indices=[pending.engine_index for pending in pendings],
        )
        assert verify_replay(_PoolSession(), inputs, run, expected=6) == 6
        pool.close(drain=True, timeout=10)
        assert cache.active_leases() == 0
        assert cache.stats.leases == cache.stats.releases == 2

    def test_orphans_fail_loudly_when_no_replacement_possible(
        self, mlp_artifact
    ):
        """If re-lease fails and no other engine is live, every orphan
        is answered with EngineDied — never silently dropped."""
        cache = ArtifactCache()
        policy = AutoscalePolicy(min_engines=1, max_engines=2, **MANUAL)
        pool = AutoscalingEnginePool(
            mlp_artifact, cache, policy=policy, batch_window_s=0.0
        )
        pool.chaos_kill()
        self.wait_for_death(pool.engines[0])
        pendings = [pool.submit(np.zeros((3, 8, 8))) for _ in range(3)]

        def refusing_lease(source, backend="float"):
            raise RuntimeError("cache shut down")

        pool._cache = type("C", (), {"lease": staticmethod(refusing_lease)})()
        with pytest.raises(RuntimeError, match="cache shut down"):
            pool._sweep_deaths()
        for pending in pendings:
            with pytest.raises(EngineDied, match="could not be re-dispatched"):
                pending.result(timeout=10)
        pool._cache = cache
        pool.close(drain=True, timeout=10)
        assert cache.active_leases() == 0

    def test_drain_on_dead_engine_raises(self, mlp_artifact):
        cache = ArtifactCache()
        policy = AutoscalePolicy(min_engines=1, max_engines=2, **MANUAL)
        pool = AutoscalingEnginePool(
            mlp_artifact, cache, policy=policy, batch_window_s=0.0
        )
        pool.chaos_kill()
        self.wait_for_death(pool.engines[0])
        pool.submit(np.zeros((3, 8, 8)))  # stranded until the sweep
        with pytest.raises(EngineDied, match="never drain"):
            pool.drain(timeout=5)
        pool._sweep_deaths()
        pool.close(drain=True, timeout=10)
        assert cache.active_leases() == 0


class TestIntegerBackendPool:
    """The integer backend under autoscaling: scale-ups and chaos-kill
    replacements lease integer clones, and re-dispatched requests get
    integer answers bit-identical to an undisturbed integer engine's."""

    def wait_for_death(self, engine, timeout_s: float = 5.0) -> None:
        deadline = time.monotonic() + timeout_s
        while not engine.worker_died:
            if time.monotonic() > deadline:
                raise AssertionError("killed worker did not die in time")
            time.sleep(0.005)

    @pytest.fixture
    def act_artifact(self, quantized_mlp_factory):
        model, manifest = quantized_mlp_factory(act_bits=2)
        return compile_artifact(model, manifest)

    def test_scale_up_leases_integer_clones(self, act_artifact):
        from repro.serve import IntegerServingModel

        cache = ArtifactCache()
        policy = AutoscalePolicy(
            min_engines=1, max_engines=2, scale_up_depth=2.0,
            scale_down_depth=0.5, **MANUAL
        )
        pool = AutoscalingEnginePool(
            act_artifact, cache, policy=policy,
            batch_window_s=0.0, autostart=False, backend="integer",
        )
        pendings = [pool.submit(np.zeros((3, 8, 8))) for _ in range(6)]
        pool._consider_scaling()  # depth 6 >= 2 -> scale up
        assert len(pool.engines) == 2
        records = pool.engine_records()
        assert all(
            isinstance(model, IntegerServingModel) for _, _, model in records
        )
        # The scale-up clone shares the prototype's immutable codes.
        first, second = records[0][2], records[1][2]
        for name, spec in first.specs.items():
            assert second.specs[name].codes is spec.codes
        pool.start()
        for pending in pendings:
            pending.result(timeout=10)
        pool.close(drain=True, timeout=10)
        assert cache.active_leases() == 0

    def test_chaos_kill_redispatch_preserves_integer_results(
        self, act_artifact
    ):
        cache = ArtifactCache()
        policy = AutoscalePolicy(min_engines=1, max_engines=2, **MANUAL)
        pool = AutoscalingEnginePool(
            act_artifact, cache, policy=policy,
            batch_window_s=0.0, record_batches=True, backend="integer",
        )
        killed = pool.chaos_kill()
        assert killed == 0
        self.wait_for_death(pool.engines[0])
        inputs = np.random.default_rng(4).standard_normal((6, 3, 8, 8))
        pendings = [pool.submit(x) for x in inputs]
        pool._sweep_deaths()
        outputs = np.stack([pending.result(timeout=10) for pending in pendings])
        assert {pending.engine_index for pending in pendings} == {1}
        assert pool.stats.redispatched == 6
        # The replacement is an integer engine and its rescued answers
        # pass both verify_replay legs (bitwise self-parity + rescale
        # bound vs the artifact's float prototype).
        pool_artifact = act_artifact

        class _PoolSession:  # verify_replay's minimal session surface
            input_dtype = pool.input_dtype
            engine_records = staticmethod(pool.engine_records)
            artifact = pool_artifact

        run = ReplayRun(
            payload={},
            outputs=outputs,
            request_ids=[pending.request_id for pending in pendings],
            engine_indices=[pending.engine_index for pending in pendings],
        )
        assert verify_replay(_PoolSession(), inputs, run, expected=6) == 6
        # Bit-identical to an undisturbed single integer engine serving
        # the same batches.
        reference = act_artifact.clone_integer_model()
        from repro.tensor.tensor import Tensor, no_grad

        with no_grad():
            expected = reference(Tensor(np.asarray(inputs))).data
        for index in range(len(inputs)):
            np.testing.assert_allclose(
                outputs[index], expected[index], rtol=1e-9, atol=1e-12
            )
        pool.close(drain=True, timeout=10)
        assert cache.active_leases() == 0
        # Integer MACs actually ran on the replacement engine.
        assert pool.stats.acc_bits_used > 0
