"""Tests for repro.serve.pool: round-robin fan-out, lifecycle, stats."""

import time

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.serve import ServingEnginePool, ShutdownTimeout


def make_toy_model(scale: float = 1.0) -> Module:
    model = Linear(3, 2, rng=np.random.default_rng(0))
    model.weight.data[...] = scale * np.arange(6, dtype=np.float64).reshape(2, 3)
    model.bias.data[...] = 0.0
    return model


class SlowModel(Module):
    def __init__(self, delay_s: float = 0.4):
        super().__init__()
        self.delay_s = delay_s

    def forward(self, x):
        time.sleep(self.delay_s)
        return x


class TestPoolBasics:
    def test_needs_models(self):
        with pytest.raises(ValueError, match="at least one model"):
            ServingEnginePool([])

    def test_rejects_shared_model_objects(self):
        model = make_toy_model()
        with pytest.raises(ValueError, match="distinct"):
            ServingEnginePool([model, model])

    def test_round_robin_assignment(self):
        models = [make_toy_model() for _ in range(3)]
        with ServingEnginePool(models, batch_window_s=0.0) as pool:
            assert len(pool) == 3
            pendings = [pool.submit(np.ones(3)) for _ in range(7)]
            for pending in pendings:
                pending.result(timeout=10)
            assert [p.engine_index for p in pendings] == [0, 1, 2, 0, 1, 2, 0]
            per_engine = pool.per_engine_stats()
            assert [stats.requests for stats in per_engine] == [3, 2, 2]

    def test_identical_models_answer_identically(self):
        models = [make_toy_model() for _ in range(2)]
        x = np.arange(3, dtype=np.float64)
        with ServingEnginePool(models, batch_window_s=0.0) as pool:
            first = pool.predict(x, timeout=10)
            second = pool.predict(x, timeout=10)
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(first, x @ models[0].weight.data.T)

    def test_combined_stats_sum_over_engines(self):
        models = [make_toy_model() for _ in range(2)]
        with ServingEnginePool(models, batch_window_s=0.0) as pool:
            for _ in range(6):
                pool.predict(np.ones(3), timeout=10)
            stats = pool.stats
        assert stats.requests == 6 and stats.completed == 6
        assert stats.forwards == sum(s.forwards for s in pool.per_engine_stats())

    def test_input_dtype_exposed(self):
        with ServingEnginePool([make_toy_model()]) as pool:
            assert pool.input_dtype == np.float64


class TestPoolLifecycle:
    def test_deferred_start_and_drain(self):
        models = [make_toy_model() for _ in range(2)]
        pool = ServingEnginePool(models, batch_window_s=0.0, autostart=False)
        pendings = [pool.submit(np.full(3, i)) for i in range(4)]
        pool.start()
        pool.drain(timeout=10)
        assert all(pending.done() for pending in pendings)
        pool.close()

    def test_close_timeout_names_laggards(self):
        pool = ServingEnginePool(
            [SlowModel(0.4), SlowModel(0.4)], batch_window_s=0.0
        )
        pendings = [pool.submit(np.ones(3)) for _ in range(2)]
        with pytest.raises(ShutdownTimeout, match="engines"):
            pool.close(drain=True, timeout=0.02)
        for pending in pendings:
            pending.result(timeout=10)
        pool.close(drain=True, timeout=10)  # patient close succeeds

    def test_close_is_idempotent(self):
        pool = ServingEnginePool([make_toy_model()])
        pool.close()
        pool.close()
