"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.data.synthetic import make_synth_cifar
from repro.models.mlp import MLP
from repro.optim.optimizers import SGD
from repro.train.trainer import Trainer
from repro.data.dataset import ArrayDataset, DataLoader


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def quantized_mlp_factory():
    """Factory for cheap (untrained) quantized MLP presets + manifests.

    Returns ``(model, manifest)`` pairs whose architecture matches
    ``build_preset_model`` exactly, so serving artifacts compiled from
    them load back — the serve tests' workhorse.
    """
    from repro.experiments.presets import build_preset_model
    from repro.quant.qmodules import (
        calibrate_activations,
        quantize_model,
        quantized_layers,
    )
    from repro.serve import ArtifactManifest

    def build(act_bits=None, seed=1, bits_seed=0, num_classes=4, image_size=8):
        model = build_preset_model(
            "mlp", num_classes=num_classes, image_size=image_size,
            scale="tiny", seed=seed,
        )
        quantize_model(model, max_bits=4, act_bits=act_bits)
        bits_rng = np.random.default_rng(bits_seed)
        for layer in quantized_layers(model).values():
            layer.set_bits(bits_rng.integers(0, 5, size=layer.num_filters))
        if act_bits is not None:
            calibration = bits_rng.standard_normal((16, 3, image_size, image_size))
            calibrate_activations(model, [calibration])
        model.eval()
        manifest = ArtifactManifest(
            model="mlp",
            dataset="synth10",
            scale="tiny",
            seed=seed,
            num_classes=num_classes,
            image_size=image_size,
            max_bits=4,
            act_bits=act_bits,
        )
        return model, manifest

    return build


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small, easily separable 4-class dataset (session-cached)."""
    return make_synth_cifar(
        num_classes=4,
        image_size=8,
        train_per_class=25,
        val_per_class=10,
        test_per_class=10,
        noise=0.2,
        seed=7,
    )


@pytest.fixture(scope="session")
def trained_mlp(tiny_dataset):
    """An MLP pre-trained to high accuracy on the tiny dataset."""
    ds = tiny_dataset
    model = MLP(
        in_features=3 * 8 * 8,
        hidden=(32, 24, 16),
        num_classes=ds.num_classes,
        rng=np.random.default_rng(3),
    )
    loader = DataLoader(
        ArrayDataset(ds.train_images, ds.train_labels),
        batch_size=25,
        shuffle=True,
        seed=0,
    )
    trainer = Trainer(model, SGD(model.parameters(), lr=0.05, momentum=0.9))
    trainer.fit(loader, epochs=12)
    model.eval()
    return model


def finite_difference(param_data: np.ndarray, loss_fn, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of ``loss_fn`` w.r.t. ``param_data``.

    ``loss_fn`` must read ``param_data`` (mutated in place) on each call.
    """
    grad = np.zeros_like(param_data)
    flat = param_data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        upper = loss_fn()
        flat[index] = original - eps
        lower = loss_fn()
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * eps)
    return grad
