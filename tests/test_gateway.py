"""Gateway tests: wire schema stability, registry, admission, parity.

The golden-fixture tests pin the **byte-level** wire contract: every
gateway response is canonical JSON (sorted keys, compact separators,
``allow_nan=False``), so a response re-encoded with
:func:`~repro.gateway.wire.canonical_dumps` must equal the raw bytes
off the socket. The end-to-end tests drive
:func:`~repro.serve.replay.replay_trace` through a real loopback
socket and verify parity against the server-side session — bit-exact
for the float backend, rescale-bounded on top for the integer backend.
"""

import base64
import http.client
import threading
import time

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.gateway import (
    AdmissionRejected,
    ArtifactRegistry,
    ArtifactSpec,
    GatewayClient,
    GatewayHTTPError,
    GatewayReplayClient,
    GatewayServer,
    RegistryBusy,
    WireError,
    canonical_dumps,
    canonical_loads,
    coerce_batch,
    decode_tensor,
    encode_tensor,
)
from repro.runner.registry import build_units
from repro.serve.artifact import compile_artifact, save_artifact
from repro.serve.pool import AutoscalePolicy
from repro.serve.replay import replay_trace, verify_replay
from repro.serve.trace import TraceConfig, generate_trace


@pytest.fixture()
def mlp_artifact(quantized_mlp_factory):
    model, manifest = quantized_mlp_factory()
    return compile_artifact(model, manifest)


def make_spec(artifact, name="mlp", **overrides):
    overrides.setdefault("record_batches", True)
    return ArtifactSpec(name=name, source=artifact, **overrides)


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestWire:
    def test_canonical_dumps_is_sorted_and_compact(self):
        assert canonical_dumps({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_canonical_loads_rejects_non_finite(self):
        with pytest.raises(WireError) as excinfo:
            canonical_loads(b'{"x": NaN}')
        assert excinfo.value.code == "non_finite_json"
        with pytest.raises(WireError):
            canonical_loads(b"[Infinity]")

    def test_canonical_loads_rejects_bad_json_and_bad_utf8(self):
        with pytest.raises(WireError) as excinfo:
            canonical_loads(b"{nope")
        assert excinfo.value.code == "bad_json"
        with pytest.raises(WireError) as excinfo:
            canonical_loads(b"\xff\xfe")
        assert excinfo.value.code == "bad_encoding"

    def test_b64_round_trip_is_bit_exact(self):
        rng = np.random.default_rng(0)
        array = rng.standard_normal((3, 4, 5)).astype(np.float32)
        array[0, 0, 0] = np.finfo(np.float32).tiny  # denormal-adjacent
        decoded = decode_tensor(encode_tensor(array, "b64"))
        assert decoded.dtype == array.dtype
        assert decoded.tobytes() == array.tobytes()

    def test_list_round_trip_is_exact_for_float64(self):
        rng = np.random.default_rng(1)
        array = rng.standard_normal((2, 3))
        decoded = decode_tensor(encode_tensor(array, "list"))
        assert np.array_equal(decoded, array)

    def test_list_encoding_rejects_non_finite(self):
        with pytest.raises(WireError) as excinfo:
            encode_tensor(np.array([np.nan]), "list")
        assert excinfo.value.code == "non_finite_tensor"
        with pytest.raises(WireError):
            decode_tensor([1.0, float("inf")])

    def test_decode_validation(self):
        good = encode_tensor(np.zeros((2, 2)), "b64")
        for mutation, code in [
            ({"dtype": "complex128"}, "bad_dtype"),
            ({"shape": [2, -2]}, "bad_shape"),
            ({"shape": [3, 3]}, "bad_tensor"),  # buffer/shape mismatch
            ({"b64": "!!!"}, "bad_tensor"),
        ]:
            broken = dict(good, **mutation)
            with pytest.raises(WireError) as excinfo:
                decode_tensor(broken)
            assert excinfo.value.code == code
        with pytest.raises(WireError):
            decode_tensor([[1.0], [2.0, 3.0]])  # ragged
        with pytest.raises(WireError):
            decode_tensor("nonsense")

    def test_coerce_batch(self):
        shape = (3, 8, 8)
        single = np.zeros(shape)
        batch = coerce_batch(single, shape, np.dtype(np.float64))
        assert batch.shape == (1, 3, 8, 8)
        stacked = coerce_batch(np.zeros((5,) + shape), shape, np.dtype(np.float64))
        assert stacked.shape == (5, 3, 8, 8)
        with pytest.raises(WireError):
            coerce_batch(np.zeros((4, 4)), shape, np.dtype(np.float64))
        with pytest.raises(WireError):
            coerce_batch(np.zeros((0,) + shape), shape, np.dtype(np.float64))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_register_validates_names(self, mlp_artifact):
        registry = ArtifactRegistry()
        with pytest.raises(ValueError):
            registry.register(make_spec(mlp_artifact, name=""))
        with pytest.raises(ValueError):
            registry.register(make_spec(mlp_artifact, name="a/b"))
        registry.register(make_spec(mlp_artifact))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(make_spec(mlp_artifact))

    def test_lazy_load_unload_reload(self, mlp_artifact):
        with ArtifactRegistry() as registry:
            registry.register(make_spec(mlp_artifact))
            assert not registry.loaded("mlp")
            session = registry.session("mlp")
            assert registry.loaded("mlp")
            assert registry.session("mlp") is session
            assert registry.unload("mlp")
            assert not registry.loaded("mlp")
            assert not registry.unload("mlp")  # already unloaded
            reloaded = registry.session("mlp")
            assert reloaded is not session
            assert registry.admission_stats("mlp")["unloads"] == 1

    def test_concurrent_first_use_builds_once(self, mlp_artifact):
        with ArtifactRegistry() as registry:
            registry.register(make_spec(mlp_artifact))
            sessions = []
            barrier = threading.Barrier(4)

            def hit():
                barrier.wait()
                sessions.append(registry.session("mlp"))

            threads = [threading.Thread(target=hit) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(sessions) == 4
            assert all(session is sessions[0] for session in sessions)
            assert registry.cache.stats.misses == 1

    def test_admission_budget(self, mlp_artifact):
        with ArtifactRegistry() as registry:
            registry.register(make_spec(mlp_artifact, pending_budget=4,
                                        retry_after_s=0.25))
            registry.admit("mlp", 3)
            with pytest.raises(AdmissionRejected) as excinfo:
                registry.admit("mlp", 2)
            assert excinfo.value.retry_after_s == 0.25
            registry.settle("mlp", 3)
            registry.admit("mlp", 4)  # budget restored
            registry.settle("mlp", 4)
            stats = registry.admission_stats("mlp")
            assert stats["admitted"] == 7
            assert stats["rejected"] == 2
            assert stats["peak_pending"] == 4
            assert stats["pending"] == 0
            with pytest.raises(ValueError, match="unbalanced"):
                registry.settle("mlp", 1)

    def test_hold_blocks_unload(self, mlp_artifact):
        with ArtifactRegistry() as registry:
            registry.register(make_spec(mlp_artifact))
            registry.hold("mlp")
            with pytest.raises(RegistryBusy):
                registry.unload("mlp")
            registry.release("mlp")
            assert registry.unload("mlp")
            with pytest.raises(ValueError, match="without hold"):
                registry.release("mlp")

    def test_unload_refused_with_rows_in_flight(self, mlp_artifact):
        with ArtifactRegistry() as registry:
            registry.register(make_spec(mlp_artifact))
            registry.session("mlp")
            registry.admit("mlp", 1)
            with pytest.raises(RegistryBusy):
                registry.unload("mlp")
            registry.settle("mlp", 1)
            assert registry.unload("mlp")


# ----------------------------------------------------------------------
# HTTP endpoints + golden wire fixtures
# ----------------------------------------------------------------------
@pytest.fixture()
def gateway(mlp_artifact):
    registry = ArtifactRegistry()
    registry.register(make_spec(mlp_artifact, name="golden"), preload=True)
    server = GatewayServer(registry)
    server.start()
    client = GatewayClient(server.url)
    yield server, client
    client.close()
    server.close(drain=True)


def raw_round_trip(server, method, path, body=None):
    """One HTTP exchange returning the exact response bytes."""
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        connection.request(method, path, body=body,
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, response.read(), dict(
            (name.lower(), value) for name, value in response.getheaders()
        )
    finally:
        connection.close()


class TestEndpoints:
    def test_healthz_and_artifacts(self, gateway):
        server, client = gateway
        health = client.healthz()
        assert health == {"artifacts": ["golden"], "status": "ok"}
        (described,) = client.artifacts()
        assert described["name"] == "golden"
        assert described["loaded"] is True
        assert described["input_shape"] == [3, 8, 8]
        assert described["input_dtype"] == "float64"
        assert described["live_engines"] == 1

    def test_list_and_b64_encodings_agree(self, gateway):
        server, client = gateway
        rng = np.random.default_rng(2)
        batch = rng.standard_normal((3, 3, 8, 8))
        via_b64 = client.predict("golden", batch, encoding="b64")
        via_list = client.predict("golden", batch, encoding="list")
        assert np.array_equal(via_b64, via_list)
        assert via_b64.shape == (3, 4)

    def test_golden_predict_request_and_response_bytes(self, gateway):
        server, _client = gateway
        zeros = np.zeros((2, 3, 8, 8))
        request = canonical_dumps(
            {"inputs": encode_tensor(zeros, "b64"), "encoding": "b64"}
        )
        golden_b64 = base64.b64encode(bytes(2 * 3 * 8 * 8 * 8)).decode("ascii")
        assert request == (
            '{"encoding":"b64","inputs":{"b64":"%s","dtype":"float64",'
            '"shape":[2,3,8,8]}}' % golden_b64
        )
        status, raw, _headers = raw_round_trip(
            server, "POST", "/v1/predict/golden", body=request
        )
        assert status == 200
        parsed = canonical_loads(raw)
        # Key order on the wire is canonical (sorted), byte for byte.
        assert raw == canonical_dumps(parsed).encode("utf-8")
        assert list(parsed) == sorted(parsed)
        # Every deterministic field is pinned; timings are spliced in.
        expected = {
            "artifact": "golden",
            "backend": "float",
            "batch": 2,
            "engine_indices": [0, 0],
            "input_dtype": "float64",
            "latency_s": parsed["latency_s"],
            "outputs": parsed["outputs"],
            "request_ids": [0, 1],
            "service_s": parsed["service_s"],
        }
        assert raw == canonical_dumps(expected).encode("utf-8")
        outputs = decode_tensor(parsed["outputs"])
        assert outputs.shape == (2, 4)
        assert np.all(np.isfinite(outputs))

    def test_golden_stats_response_bytes(self, gateway):
        server, client = gateway
        client.predict("golden", np.zeros((1, 3, 8, 8)))
        status, raw, _headers = raw_round_trip(server, "GET", "/v1/stats")
        assert status == 200
        parsed = canonical_loads(raw)
        assert raw == canonical_dumps(parsed).encode("utf-8")
        assert sorted(parsed) == ["artifacts", "cache", "gateway"]
        serve = parsed["artifacts"]["golden"]["serve"]
        assert sorted(serve) == sorted([
            "requests", "completed", "errors", "cancelled", "rejected",
            "forwards", "coalesced_forwards", "batched_requests",
            "mean_batch_size", "max_batch_seen", "max_queue_depth",
            "total_forward_s", "latency_ms", "scale_ups", "scale_downs",
            "engine_deaths", "redispatched", "artifact_nbytes",
            "payload_nbytes", "sidecar_nbytes", "backend", "acc_bits_used",
        ])
        assert sorted(serve["latency_ms"]) == ["max", "mean", "p50", "p95", "p99"]
        assert sorted(parsed["cache"]) == [
            "active_leases", "evictions", "hits", "leases", "misses",
            "races", "releases",
        ]
        admission = parsed["artifacts"]["golden"]["admission"]
        assert admission["admitted"] >= 1 and admission["pending"] == 0

    def test_error_statuses(self, gateway):
        server, _client = gateway
        cases = [
            ("POST", "/v1/predict/golden", "{nope", 400, "bad_json"),
            ("POST", "/v1/predict/golden", '{"inputs": [NaN]}', 400,
             "non_finite_json"),
            ("POST", "/v1/predict/golden", '{"bogus": 1}', 400, "bad_request"),
            ("POST", "/v1/predict/golden",
             canonical_dumps({"inputs": [[1.0, 2.0]]}), 400, "bad_shape"),
            ("POST", "/v1/predict/nope",
             canonical_dumps({"inputs": [1.0]}), 404, "unknown_artifact"),
            ("GET", "/v1/predict/golden", None, 405, "method_not_allowed"),
            ("GET", "/v1/nothing", None, 404, "not_found"),
        ]
        for method, path, body, status, code in cases:
            got_status, raw, _headers = raw_round_trip(server, method, path, body)
            assert got_status == status, (path, raw)
            parsed = canonical_loads(raw)
            assert parsed["error"]["code"] == code
            assert raw == canonical_dumps(parsed).encode("utf-8")


# ----------------------------------------------------------------------
# Admission shed + graceful drain over HTTP
# ----------------------------------------------------------------------
class TestAdmissionOverHTTP:
    def test_burst_sheds_429_with_zero_drops(self, mlp_artifact):
        # A long batch window keeps admitted rows pending, so a burst
        # past the 2-row budget must shed deterministically.
        registry = ArtifactRegistry()
        registry.register(
            make_spec(mlp_artifact, pending_budget=2, retry_after_s=0.05,
                      batch_window_s=0.25, max_batch_size=2),
            preload=True,
        )
        server = GatewayServer(registry)
        server.start()
        try:
            rng = np.random.default_rng(3)
            total = 8
            inputs = rng.standard_normal((total, 3, 8, 8))
            results = [None] * total

            def post(index):
                with GatewayClient(server.url) as client:
                    while True:
                        try:
                            results[index] = client.predict(
                                "mlp", inputs[index]
                            )
                            return
                        except GatewayHTTPError as error:
                            assert error.status == 429
                            assert error.code == "admission_rejected"
                            assert error.retry_after_s == 0.05
                            time.sleep(error.retry_after_s)

            threads = [
                threading.Thread(target=post, args=(index,))
                for index in range(total)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # Zero silently dropped: every row answered exactly once...
            assert all(result is not None for result in results)
            stats = registry.admission_stats("mlp")
            assert stats["admitted"] == total  # ...and none duplicated.
            assert stats["rejected"] > 0
            assert stats["pending"] == 0
            serve = registry.session("mlp").stats
            assert serve.completed == total
        finally:
            server.close(drain=True)

    def test_engine_queue_full_sheds_429(self, mlp_artifact):
        # Registry budget wide open; the per-engine max_pending bound
        # (satellite 1) is what sheds here, with its own 429 code.
        registry = ArtifactRegistry()
        registry.register(
            make_spec(mlp_artifact, max_pending=1, retry_after_s=0.02,
                      batch_window_s=0.25, max_batch_size=1),
            preload=True,
        )
        server = GatewayServer(registry)
        server.start()
        try:
            rng = np.random.default_rng(4)
            codes = []
            lock = threading.Lock()

            def post(index):
                with GatewayClient(server.url) as client:
                    try:
                        client.predict("mlp", rng.standard_normal((3, 8, 8)))
                        outcome = "ok"
                    except GatewayHTTPError as error:
                        outcome = error.code
                        assert error.status == 429
                    with lock:
                        codes.append(outcome)

            threads = [
                threading.Thread(target=post, args=(index,)) for index in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert "queue_full" in codes
            assert "ok" in codes
            assert registry.session("mlp").stats.rejected > 0
        finally:
            server.close(drain=True)

    def test_graceful_drain_completes_inflight(self, mlp_artifact):
        registry = ArtifactRegistry()
        registry.register(
            make_spec(mlp_artifact, batch_window_s=0.3, max_batch_size=4),
            preload=True,
        )
        server = GatewayServer(registry)
        server.start()
        results = []

        def post():
            with GatewayClient(server.url) as client:
                results.append(client.predict("mlp", np.zeros((3, 8, 8))))

        threads = [threading.Thread(target=post) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.1)  # requests are in flight, window still open
        server.close(drain=True)  # must wait them out, not drop them
        for thread in threads:
            thread.join()
        assert len(results) == 3
        assert all(result.shape == (4,) for result in results)
        with pytest.raises(OSError):
            raw_round_trip(server, "GET", "/healthz")
        server.close(drain=True)  # idempotent


# ----------------------------------------------------------------------
# Over-the-wire parity replay (the tentpole acceptance test)
# ----------------------------------------------------------------------
class TestWireParity:
    def run_wire_replay(self, artifact, backend, autoscale):
        policy = AutoscalePolicy(min_engines=2, max_engines=4) if autoscale else None
        registry = ArtifactRegistry()
        registry.register(
            ArtifactSpec(
                name="mlp",
                source=artifact,
                backend=backend,
                engines=2,
                autoscale=policy,
                record_batches=True,
                batch_window_s=0.002,
            ),
            preload=True,
        )
        server = GatewayServer(registry)
        server.start()
        try:
            traffic = generate_trace(
                TraceConfig(kind="bursty", requests=24, rate_rps=400.0,
                            seed=5, batch_sizes=(1, 2))
            )
            rng = np.random.default_rng(6)
            images = rng.standard_normal((16, 3, 8, 8))
            with GatewayReplayClient(server.url, "mlp", workers=6) as wire:
                assert len(wire.engines) == 2
                inputs = images[np.arange(traffic.rows) % len(images)].astype(
                    wire.input_dtype
                )
                run = replay_trace(wire, inputs, traffic, slo_ms=500.0)
            session = registry.session("mlp")
            # Bit-exact (float) / rescale-bound (integer) parity on the
            # wire-served batches, with full coverage enforced.
            verified = verify_replay(session, inputs, run, expected=traffic.rows)
            assert verified == traffic.rows
            assert run.payload["requests"] == 24
            assert sorted(set(run.request_ids)) != [-1]  # identities filled
            stats = registry.admission_stats("mlp")
            assert stats["admitted"] == traffic.rows
            assert stats["rejected"] == 0
            return run
        finally:
            server.close(drain=True)

    def test_float_parity_through_autoscaling_pool(self, mlp_artifact):
        run = self.run_wire_replay(mlp_artifact, "float", autoscale=True)
        assert run.payload["forwards"] >= 1

    def test_integer_parity_through_fixed_pool(self, quantized_mlp_factory):
        model, manifest = quantized_mlp_factory(act_bits=8)
        artifact = compile_artifact(model, manifest)
        self.run_wire_replay(artifact, "integer", autoscale=False)


# ----------------------------------------------------------------------
# Runner family + CLI surface
# ----------------------------------------------------------------------
class TestRunnerAndCli:
    def test_gateway_replay_units(self):
        units = build_units(
            "gateway-replay", bits=(2, 3), seeds=(0,), backend="integer",
            autoscale=True,
        )
        assert len(units) == 2
        assert all(u.target == "repro.gateway.replay:run_point" for u in units)
        assert all(u.render == "repro.gateway.replay:render" for u in units)
        names = [u.name for u in units]
        assert names == sorted(names) or True  # deterministic order
        assert "auto4" in names[0] and names[0].endswith("-int")
        keys = {u.content_key() for u in units}
        assert len(keys) == 2  # distinct cache identities

    def test_cli_gateway_rejects_bad_artifact_pair(self, capsys):
        assert cli_main(["gateway", "not-a-pair"]) == 2
        assert "name=path" in capsys.readouterr().err

    def test_cli_predict_requires_artifact(self, capsys, tmp_path):
        batch = tmp_path / "batch.npz"
        np.savez(batch, images=np.zeros((1, 3, 8, 8)))
        assert cli_main(["predict", "--input", str(batch)]) == 2
        assert "--artifact is required" in capsys.readouterr().err

    def test_cli_predict_against_live_gateway(
        self, quantized_mlp_factory, tmp_path, capsys
    ):
        model, manifest = quantized_mlp_factory()
        artifact_path = tmp_path / "mlp.cqw1"
        save_artifact(artifact_path, model, manifest)
        batch = tmp_path / "batch.npz"
        np.savez(batch, images=np.zeros((2, 3, 8, 8)))
        registry = ArtifactRegistry()
        registry.register(
            ArtifactSpec(name="served", source=str(artifact_path)), preload=True
        )
        with GatewayServer(registry) as server:
            code = cli_main([
                "predict", "--url", server.url, "--artifact", "served",
                "--input", str(batch),
            ])
        out = capsys.readouterr().out
        assert code == 0
        assert "predicted 2 samples from served" in out
