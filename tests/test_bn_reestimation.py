"""Tests for batch-norm re-estimation after quantization."""

import numpy as np
import pytest

from repro.data.synthetic import make_synth_cifar
from repro.models.vgg import VGGSmall
from repro.nn.layers import BatchNorm2d
from repro.quant import quantize_model, quantized_layers
from repro.quant.bn import reestimate_batchnorm_stats
from repro.tensor import Tensor
from repro.utils import clone_module


@pytest.fixture(scope="module")
def trained_vgg():
    from repro.data import ArrayDataset, DataLoader
    from repro.optim import SGD
    from repro.train import Trainer

    dataset = make_synth_cifar(
        num_classes=4, image_size=8, train_per_class=25, val_per_class=5,
        test_per_class=10, seed=21,
    )
    model = VGGSmall(num_classes=4, image_size=8, width=4, rng=np.random.default_rng(0))
    loader = DataLoader(
        ArrayDataset(dataset.train_images, dataset.train_labels),
        batch_size=25, shuffle=True, seed=0,
    )
    Trainer(model, SGD(model.parameters(), lr=0.02, momentum=0.9)).fit(loader, epochs=10)
    return model, dataset


class TestReestimation:
    def test_returns_bn_count(self, trained_vgg):
        model, dataset = trained_vgg
        clone = clone_module(model)
        count = reestimate_batchnorm_stats(clone, [dataset.train_images[:25]])
        assert count == 5  # VGG-small has 5 BatchNorm2d layers

    def test_no_bn_model_returns_zero(self, tiny_dataset, trained_mlp):
        clone = clone_module(trained_mlp)
        count = reestimate_batchnorm_stats(clone, [tiny_dataset.train_images[:10]])
        assert count == 0

    def test_stats_change_after_quantization(self, trained_vgg):
        model, dataset = trained_vgg
        student = clone_module(model)
        quantize_model(student, max_bits=2)
        for layer in quantized_layers(student).values():
            layer.set_bits(np.full(layer.num_filters, 1, dtype=np.int64))
        original_means = {
            name: bn.running_mean.copy()
            for name, bn in student.named_modules()
            if isinstance(bn, BatchNorm2d)
        }
        reestimate_batchnorm_stats(student, [dataset.train_images[:25]])
        changed = any(
            not np.allclose(bn.running_mean, original_means[name])
            for name, bn in student.named_modules()
            if isinstance(bn, BatchNorm2d)
        )
        assert changed

    def test_restores_training_flag(self, trained_vgg):
        model, dataset = trained_vgg
        clone = clone_module(model)
        clone.eval()
        reestimate_batchnorm_stats(clone, [dataset.train_images[:25]])
        assert not clone.training

    def test_no_weight_updates(self, trained_vgg):
        model, dataset = trained_vgg
        clone = clone_module(model)
        weight_before = clone.conv1.weight.data.copy()
        reestimate_batchnorm_stats(clone, [dataset.train_images[:25]])
        np.testing.assert_array_equal(clone.conv1.weight.data, weight_before)

    def test_improves_or_preserves_quantized_accuracy(self, trained_vgg):
        """The headline property: after low-bit quantization, re-estimated
        BN statistics should not hurt, and typically help, eval accuracy."""
        from repro.data import ArrayDataset, DataLoader
        from repro.train import evaluate_model

        model, dataset = trained_vgg
        student = clone_module(model)
        quantize_model(student, max_bits=4)
        for layer in quantized_layers(student).values():
            layer.set_bits(np.full(layer.num_filters, 2, dtype=np.int64))
        loader = DataLoader(
            ArrayDataset(dataset.test_images, dataset.test_labels), batch_size=40
        )
        before = evaluate_model(student, loader).accuracy
        reestimate_batchnorm_stats(student, [dataset.train_images[:50]], passes=10)
        after = evaluate_model(student, loader).accuracy
        assert after >= before - 0.1

    def test_validation(self, trained_vgg):
        model, dataset = trained_vgg
        with pytest.raises(ValueError):
            reestimate_batchnorm_stats(model, [], passes=1)
        with pytest.raises(ValueError):
            reestimate_batchnorm_stats(model, [dataset.train_images[:5]], passes=0)
