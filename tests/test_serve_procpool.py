"""Tests for repro.serve.procpool: process-backed serving over one
shared-memory artifact copy — the pickle-free wire codec, cross-worker
parity, chaos-kill supervision with zero-drop redispatch, shm segment
lifecycle, and the ServeConfig integration that makes thread- and
process-backed pools interchangeable."""

import gc
import time

import numpy as np
import pytest

from repro.serve import (
    ArtifactCache,
    AutoscalePolicy,
    EnginePool,
    ProcessEnginePool,
    ReplayRun,
    ServeConfig,
    ServingSession,
    SharedArtifactSegment,
    compile_artifact,
    verify_replay,
)
from repro.serve.procpool import (
    _decode_batch,
    _decode_predict,
    _encode_batch,
    _encode_predict,
)
from repro.tensor.tensor import Tensor, no_grad


@pytest.fixture
def mlp_artifact(quantized_mlp_factory):
    model, manifest = quantized_mlp_factory()
    return compile_artifact(model, manifest)


def wait_until(predicate, timeout_s: float = 10.0, what: str = "condition"):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"{what} did not hold within {timeout_s}s")
        time.sleep(0.01)


class PoolSession:
    """verify_replay's minimal session surface over a bare pool."""

    def __init__(self, pool, artifact=None):
        self.input_dtype = pool.input_dtype
        self.engine_records = pool.engine_records
        self.artifact = artifact  # integer parity needs a float reference


def replay_pool(pool, inputs):
    """Submit every row, wait for all answers, return a ReplayRun."""
    pendings = [pool.submit(x) for x in inputs]
    outputs = [pending.result(timeout=30) for pending in pendings]
    return ReplayRun(
        payload={},
        outputs=np.stack(outputs),
        request_ids=[pending.request_id for pending in pendings],
        engine_indices=[pending.engine_index for pending in pendings],
    )


# ----------------------------------------------------------------------
# wire codec
# ----------------------------------------------------------------------
class TestWireCodec:
    def test_predict_round_trip_is_zero_copy(self):
        array = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        frame = _encode_predict(7, array)
        rid, decoded = _decode_predict(frame, np.dtype(np.float32))
        assert rid == 7
        assert decoded.shape == array.shape and decoded.dtype == array.dtype
        np.testing.assert_array_equal(decoded, array)
        # np.frombuffer over the received frame: no payload copy.
        assert decoded.base is not None

    def test_batch_round_trip(self):
        outputs = np.arange(12, dtype=np.float32).reshape(3, 4)
        frame = _encode_batch([3, 9, 27], 0.125, 12, outputs, None)
        service_s, acc_bits, rids, decoded, error = _decode_batch(frame)
        assert rids == [3, 9, 27]
        assert service_s == 0.125 and acc_bits == 12 and error is None
        np.testing.assert_array_equal(decoded, outputs)

    def test_batch_error_round_trip(self):
        _service_s, _acc_bits, rids, decoded, error = _decode_batch(
            _encode_batch([5], 0.0, 0, None, "model exploded: NaN")
        )
        assert rids == [5] and decoded is None
        assert error == "model exploded: NaN"


# ----------------------------------------------------------------------
# shared-memory segment lifecycle
# ----------------------------------------------------------------------
class TestSharedSegment:
    def test_create_attach_load_unlink(self, mlp_artifact):
        segment = SharedArtifactSegment.create(mlp_artifact.data)
        try:
            assert segment.nbytes == mlp_artifact.nbytes
            attached = SharedArtifactSegment.attach(segment.name, segment.nbytes)
            try:
                loaded = attached.load()
                # Same serialized bytes => same content identity, and the
                # parse reads straight out of the mapping.
                assert loaded.content_key == mlp_artifact.content_key
                assert loaded.shared_nbytes == loaded.nbytes
                # Drop the zero-copy views before unmapping, so the
                # mapping can actually close (workers do the same).
                del loaded
                gc.collect()
            finally:
                attached.close()
        finally:
            segment.close()
            segment.unlink()
        with pytest.raises(FileNotFoundError):
            SharedArtifactSegment.attach(segment.name, segment.nbytes)

    def test_unlink_is_owner_only_and_idempotent(self, mlp_artifact):
        segment = SharedArtifactSegment.create(mlp_artifact.data)
        attached = SharedArtifactSegment.attach(segment.name, segment.nbytes)
        attached.unlink()  # non-owner: silent no-op, name survives
        reattached = SharedArtifactSegment.attach(segment.name, segment.nbytes)
        reattached.close()
        attached.close()
        segment.close()
        segment.unlink()
        segment.unlink()  # second unlink is a no-op, not an error


# ----------------------------------------------------------------------
# process pool serving
# ----------------------------------------------------------------------
class TestProcessPoolServing:
    def test_parity_across_workers_and_shm_teardown(self, mlp_artifact):
        """Both workers answer over one shared artifact copy; every
        answer is bit-exact against the parent-side verification twins;
        close() releases every lease and unlinks the segment."""
        cache = ArtifactCache()
        pool = ProcessEnginePool(
            mlp_artifact, cache, workers=2,
            batch_window_s=0.0, record_batches=True,
        )
        segment_name = pool.segment.name
        segment_nbytes = pool.segment.nbytes
        try:
            inputs = np.random.default_rng(0).standard_normal((8, 3, 8, 8))
            run = replay_pool(pool, inputs)
            assert set(run.engine_indices) == {0, 1}  # round-robin fan-out
            assert verify_replay(PoolSession(pool), inputs, run, expected=8) == 8
            stats = pool.stats
            assert stats.requests == stats.completed == 8
            assert stats.backend == "float"
            shm = pool.shm_stats()
            assert shm["nbytes"] == mlp_artifact.nbytes
            assert shm["attached"] == 2 and not shm["unlinked"]
            # One verification twin leased per worker, all still active.
            assert cache.stats.leases == 2 and cache.active_leases() == 2
        finally:
            pool.close(drain=True, timeout=30)
        assert cache.active_leases() == 0
        assert pool.shm_stats()["unlinked"]
        with pytest.raises(FileNotFoundError):  # no shm leak
            SharedArtifactSegment.attach(segment_name, segment_nbytes)

    def test_answers_match_in_process_model(self, mlp_artifact):
        cache = ArtifactCache()
        pool = ProcessEnginePool(
            mlp_artifact, cache, workers=2, batch_window_s=0.0
        )
        try:
            x = np.random.default_rng(1).standard_normal((3, 8, 8))
            served = pool.submit(x).result(timeout=30)
            with no_grad():
                local = mlp_artifact.model()(
                    Tensor(x[None].astype(pool.input_dtype))
                ).data[0]
            np.testing.assert_array_equal(served, local)
        finally:
            pool.close(drain=True, timeout=30)

    def test_integer_backend_serves_packed_codes(self, quantized_mlp_factory):
        model, manifest = quantized_mlp_factory(act_bits=4)
        artifact = compile_artifact(model, manifest)
        cache = ArtifactCache()
        pool = ProcessEnginePool(
            artifact, cache, workers=2,
            batch_window_s=0.0, record_batches=True, backend="integer",
        )
        try:
            inputs = np.random.default_rng(2).standard_normal((4, 3, 8, 8))
            run = replay_pool(pool, inputs)
            # Integer parity: bit-exact against the parent's integer
            # twins, rescale-bounded inside verify_replay.
            session = PoolSession(pool, artifact=artifact)
            assert verify_replay(session, inputs, run, expected=4) == 4
            assert pool.stats.backend == "integer"
        finally:
            pool.close(drain=True, timeout=30)

    def test_is_an_engine_pool(self, mlp_artifact):
        assert issubclass(ProcessEnginePool, EnginePool)
        assert ProcessEnginePool.supports_chaos
        cache = ArtifactCache()
        pool = ProcessEnginePool(
            mlp_artifact, cache, workers=1, batch_window_s=0.0
        )
        try:
            scaling = pool.describe_scaling()
            assert scaling["kind"] == "process" and not scaling["enabled"]
            assert scaling["workers"] == 1
            assert pool.peak_engines == 1
        finally:
            pool.close(drain=True, timeout=30)


# ----------------------------------------------------------------------
# chaos: worker death mid-replay
# ----------------------------------------------------------------------
class TestProcessChaosKill:
    def test_killed_worker_is_replaced_and_orphans_redispatched(
        self, mlp_artifact
    ):
        """The resilience contract, cross-process: SIGKILL a worker with
        requests in flight → the supervisor detects the death, releases
        its lease and mapping, spawns a replacement, re-dispatches the
        orphans — and verify_replay(expected=N) proves zero drops."""
        cache = ArtifactCache()
        pool = ProcessEnginePool(
            mlp_artifact, cache, workers=2,
            batch_window_s=0.25,  # requests dwell in the worker's window
            record_batches=True,
        )
        try:
            inputs = np.random.default_rng(3).standard_normal((6, 3, 8, 8))
            pendings = [pool.submit(x) for x in inputs]
            killed = pool.chaos_kill(engine_index=0)
            assert killed == 0
            wait_until(
                lambda: pool.stats.engine_deaths >= 1, what="death detection"
            )
            outputs = [pending.result(timeout=30) for pending in pendings]
            run = ReplayRun(
                payload={},
                outputs=np.stack(outputs),
                request_ids=[p.request_id for p in pendings],
                engine_indices=[p.engine_index for p in pendings],
            )
            # Full coverage: every one of the 6 requests answered
            # bit-exact, including the rescued orphans.
            assert verify_replay(PoolSession(pool), inputs, run, expected=6) == 6
            stats = pool.stats
            assert stats.engine_deaths == 1
            assert stats.redispatched >= 1  # the dead worker held work
            actions = [event.action for event in pool.scale_events()]
            assert "death" in actions and "replace" in actions
            # shm refcount dropped for the corpse, replacement attached.
            shm = pool.shm_stats()
            assert shm["attached"] == 2 and shm["detached_total"] >= 1
            # Lease accounting: corpse's twin released, replacement active.
            assert cache.stats.leases == 3 and cache.active_leases() == 2
            fates = [fate["fate"] for fate in pool.engine_lifetimes_s()]
            assert fates.count("died") == 1
        finally:
            pool.close(drain=True, timeout=30)
        assert cache.active_leases() == 0
        assert pool.shm_stats()["unlinked"]  # no shm leak after chaos


# ----------------------------------------------------------------------
# ServeConfig integration: pools are swappable, no consumer branching
# ----------------------------------------------------------------------
class TestSessionProcessPool:
    def test_config_validation(self, mlp_artifact):
        with pytest.raises(ValueError, match="unknown pool kind"):
            ServingSession(mlp_artifact, config=ServeConfig(pool="fiber"))
        with pytest.raises(ValueError, match="not both"):
            ServingSession(
                mlp_artifact,
                config=ServeConfig(
                    pool="process", autoscale=AutoscalePolicy(max_engines=2)
                ),
            )
        with pytest.raises(ValueError, match="workers"):
            ServingSession(
                mlp_artifact, config=ServeConfig(pool="process", engines=2)
            )

    def test_bare_model_cannot_cross_processes(self, quantized_mlp_factory):
        model, _manifest = quantized_mlp_factory()
        with pytest.raises(ValueError, match="artifact"):
            ServingSession(model, config=ServeConfig(pool="process"))

    def test_session_serves_through_worker_processes(self, mlp_artifact):
        config = ServeConfig(pool="process", workers=2, record_batches=True)
        with ServingSession(mlp_artifact, config=config) as session:
            assert isinstance(session.pool, ProcessEnginePool)
            xs = np.random.default_rng(4).standard_normal((4, 3, 8, 8))
            pendings = [session.submit(x) for x in xs]
            run = ReplayRun(
                payload={},
                outputs=np.stack([p.result(timeout=30) for p in pendings]),
                request_ids=[p.request_id for p in pendings],
                engine_indices=[p.engine_index for p in pendings],
            )
            # Bit-exact parity via the standard guard — the same
            # verify_replay call the thread-backed session satisfies.
            assert verify_replay(session, xs, run, expected=4) == 4
            # The session consumes the pool through the EnginePool
            # interface: the same scaling surface as every other pool.
            assert session.pool.describe_scaling()["kind"] == "process"
