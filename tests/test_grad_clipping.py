"""Tests for gradient clipping (repro.optim.clip_grad_norm_) and its
integration into the Trainer / refinement path."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD, clip_grad_norm_
from repro.train.trainer import Trainer


def params_with_grads(grads):
    params = []
    for grad in grads:
        param = Parameter(np.zeros_like(np.asarray(grad, dtype=np.float64)))
        param.grad = np.asarray(grad, dtype=np.float64)
        params.append(param)
    return params


class TestClipGradNorm:
    def test_below_threshold_untouched(self):
        params = params_with_grads([[3.0, 4.0]])  # norm 5
        norm = clip_grad_norm_(params, max_norm=10.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(params[0].grad, [3.0, 4.0])

    def test_above_threshold_scaled_to_max(self):
        params = params_with_grads([[3.0, 4.0]])  # norm 5
        norm = clip_grad_norm_(params, max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(params[0].grad) == pytest.approx(1.0, rel=1e-6)
        # Direction preserved.
        np.testing.assert_allclose(params[0].grad, [0.6, 0.8], rtol=1e-6)

    def test_global_norm_across_parameters(self):
        params = params_with_grads([[3.0], [4.0]])  # global norm 5
        clip_grad_norm_(params, max_norm=1.0)
        total = sum(float((p.grad ** 2).sum()) for p in params)
        assert np.sqrt(total) == pytest.approx(1.0, rel=1e-6)

    def test_none_gradients_skipped(self):
        param = Parameter(np.zeros(2))
        assert param.grad is None
        norm = clip_grad_norm_([param], max_norm=1.0)
        assert norm == 0.0

    def test_nonfinite_gradients_zeroed(self):
        params = params_with_grads([[1.0, np.inf], [2.0, 3.0]])
        norm = clip_grad_norm_(params, max_norm=1.0)
        assert norm == float("inf")
        for param in params:
            np.testing.assert_array_equal(param.grad, 0.0)

    def test_nan_gradients_zeroed(self):
        params = params_with_grads([[np.nan, 1.0]])
        clip_grad_norm_(params, max_norm=1.0)
        np.testing.assert_array_equal(params[0].grad, 0.0)

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError, match="positive"):
            clip_grad_norm_([], max_norm=0.0)


class TestTrainerIntegration:
    def test_invalid_max_grad_norm_rejected(self, trained_mlp):
        with pytest.raises(ValueError, match="positive"):
            Trainer(
                trained_mlp,
                SGD(trained_mlp.parameters(), lr=0.01),
                max_grad_norm=-1.0,
            )

    def test_clipped_training_still_learns(self, tiny_dataset):
        from repro.data.dataset import ArrayDataset, DataLoader
        from repro.models.mlp import MLP

        ds = tiny_dataset
        model = MLP(
            in_features=3 * 8 * 8,
            hidden=(16, 12),
            num_classes=ds.num_classes,
            rng=np.random.default_rng(0),
        )
        loader = DataLoader(
            ArrayDataset(ds.train_images, ds.train_labels),
            batch_size=25,
            shuffle=True,
            seed=0,
        )
        trainer = Trainer(
            model, SGD(model.parameters(), lr=0.05, momentum=0.9), max_grad_norm=1.0
        )
        history = trainer.fit(loader, epochs=8)
        assert history.train[-1].accuracy > history.train[0].accuracy

    def test_config_validation(self):
        from repro.core.config import CQConfig

        with pytest.raises(ValueError, match="refine_max_grad_norm"):
            CQConfig(refine_max_grad_norm=0.0)
        with pytest.raises(ValueError, match="refine_max_grad_norm"):
            CQConfig(refine_max_grad_norm="always")
        assert CQConfig(refine_max_grad_norm=None).refine_max_grad_norm is None
        assert CQConfig().refine_max_grad_norm == "auto"


class TestAdaptiveClipper:
    def test_warmup_never_clips(self):
        from repro.optim import AdaptiveGradClipper

        clipper = AdaptiveGradClipper(factor=2.0, warmup=3)
        for _ in range(3):
            params = params_with_grads([[3.0, 4.0]])
            clipper.clip(params)
            np.testing.assert_allclose(params[0].grad, [3.0, 4.0])

    def test_escalation_clipped_after_warmup(self):
        from repro.optim import AdaptiveGradClipper

        clipper = AdaptiveGradClipper(factor=2.0, warmup=3)
        for _ in range(5):
            clipper.clip(params_with_grads([[3.0, 4.0]]))  # median norm 5
        spike = params_with_grads([[300.0, 400.0]])  # norm 500 >> 2*5
        clipper.clip(spike)
        assert np.linalg.norm(spike[0].grad) == pytest.approx(10.0, rel=1e-6)

    def test_slow_drift_not_clipped(self):
        from repro.optim import AdaptiveGradClipper

        clipper = AdaptiveGradClipper(factor=10.0, warmup=2, window=5)
        norm = 1.0
        for _ in range(20):
            params = params_with_grads([[norm, 0.0]])
            clipper.clip(params)
            # Norm grows 30% per step — healthy drift stays unclipped.
            assert params[0].grad[0] == pytest.approx(norm)
            norm *= 1.3

    def test_nonfinite_zeroed_and_median_unpolluted(self):
        from repro.optim import AdaptiveGradClipper

        clipper = AdaptiveGradClipper(factor=2.0, warmup=2)
        for _ in range(3):
            clipper.clip(params_with_grads([[3.0, 4.0]]))
        params = params_with_grads([[np.inf, 1.0]])
        clipper.clip(params)
        np.testing.assert_array_equal(params[0].grad, 0.0)
        # The inf norm must not enter the median window.
        follow_up = params_with_grads([[3.0, 4.0]])
        clipper.clip(follow_up)
        np.testing.assert_allclose(follow_up[0].grad, [3.0, 4.0])

    def test_invalid_parameters(self):
        from repro.optim import AdaptiveGradClipper

        with pytest.raises(ValueError):
            AdaptiveGradClipper(factor=1.0)
        with pytest.raises(ValueError):
            AdaptiveGradClipper(window=0)

    def test_trainer_accepts_auto(self, trained_mlp):
        trainer = Trainer(
            trained_mlp, SGD(trained_mlp.parameters(), lr=0.01), max_grad_norm="auto"
        )
        assert trainer._adaptive_clipper is not None

    def test_trainer_rejects_unknown_string(self, trained_mlp):
        with pytest.raises(ValueError):
            Trainer(
                trained_mlp, SGD(trained_mlp.parameters(), lr=0.01), max_grad_norm="always"
            )
