"""Tests for per-layer activation bit allocation (extension)."""

import numpy as np
import pytest

from repro.core.act_allocation import (
    ActAllocationConfig,
    allocate_activation_bits,
    apply_activation_bits,
)
from repro.quant.qmodules import quantize_model, quantized_layers
from repro.utils.misc import clone_module


@pytest.fixture(scope="module")
def quantized_mlp(trained_mlp):
    model = clone_module(trained_mlp)
    quantize_model(model, max_bits=4, act_bits=None)
    return model


class TestConfig:
    def test_invalid_bounds(self):
        with pytest.raises(ValueError, match="min_bits"):
            ActAllocationConfig(min_bits=0)
        with pytest.raises(ValueError, match="min_bits"):
            ActAllocationConfig(min_bits=9, max_bits=8)

    def test_unreachable_budget(self):
        with pytest.raises(ValueError, match="unreachable"):
            ActAllocationConfig(target_avg_bits=1.0, min_bits=2)


class TestAllocation:
    @pytest.fixture(scope="class")
    def result(self, quantized_mlp, tiny_dataset):
        config = ActAllocationConfig(target_avg_bits=4.0, max_bits=6, min_bits=2)
        return allocate_activation_bits(quantized_mlp, tiny_dataset, config)

    def test_budget_met_weighted_by_activations(self, result):
        assert result.average_bits <= 4.0 + 1e-9

    def test_bits_within_bounds(self, result):
        for bits in result.act_bits.values():
            assert 2 <= bits <= 6

    def test_one_entry_per_quantized_layer(self, quantized_mlp, result):
        assert set(result.act_bits) == set(quantized_layers(quantized_mlp))

    def test_input_model_untouched(self, quantized_mlp, result):
        for layer in quantized_layers(quantized_mlp).values():
            assert layer.act_bits is None
            assert not layer.act_quant_enabled

    def test_evaluations_counted(self, result):
        assert result.evaluations > 0
        assert 0.0 <= result.search_accuracy <= 1.0

    def test_generous_budget_keeps_max_bits(self, quantized_mlp, tiny_dataset):
        config = ActAllocationConfig(target_avg_bits=6.0, max_bits=6, min_bits=2)
        result = allocate_activation_bits(quantized_mlp, tiny_dataset, config)
        assert all(bits == 6 for bits in result.act_bits.values())
        # One evaluation (the initial one); no demotions needed.
        assert result.evaluations == 1

    def test_unquantized_model_rejected(self, trained_mlp, tiny_dataset):
        config = ActAllocationConfig()
        with pytest.raises(ValueError, match="quantize weights first"):
            allocate_activation_bits(trained_mlp, tiny_dataset, config)


class TestApply:
    def test_apply_sets_layer_attributes(self, quantized_mlp, tiny_dataset):
        model = clone_module(quantized_mlp)
        names = list(quantized_layers(model))
        assignment = {name: 3 for name in names}
        apply_activation_bits(model, assignment)
        for layer in quantized_layers(model).values():
            assert layer.act_bits == 3
            assert layer.act_quant_enabled

    def test_apply_unknown_layer_rejected(self, quantized_mlp):
        model = clone_module(quantized_mlp)
        with pytest.raises(KeyError, match="unknown"):
            apply_activation_bits(model, {"nonexistent": 4})

    def test_allocated_model_still_evaluates(self, quantized_mlp, tiny_dataset):
        from repro.quant.qmodules import calibrate_activations
        from repro.tensor.tensor import Tensor, no_grad

        model = clone_module(quantized_mlp)
        config = ActAllocationConfig(target_avg_bits=3.0, max_bits=4, min_bits=2)
        result = allocate_activation_bits(model, tiny_dataset, config)
        apply_activation_bits(model, result.act_bits)
        calibrate_activations(model, [tiny_dataset.train_images[:50]])
        model.eval()
        with no_grad():
            logits = model(Tensor(tiny_dataset.test_images[:20]))
        assert logits.shape == (20, tiny_dataset.num_classes)
        assert np.isfinite(logits.data).all()
