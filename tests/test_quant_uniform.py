"""Tests for the uniform quantizer (eqs. 1-3), including hypothesis
property tests on its mathematical invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant import (
    UniformQuantizer,
    average_bit_width,
    quantize_per_filter,
    quantize_uniform,
)
from repro.quant.uniform import quantization_levels


class TestQuantizationLevels:
    def test_levels_power_of_two(self):
        assert quantization_levels(1) == 2
        assert quantization_levels(4) == 16
        assert quantization_levels(0) == 1

    def test_negative_bits_raise(self):
        with pytest.raises(ValueError):
            quantization_levels(-1)


class TestQuantizeUniform:
    def test_zero_bits_prunes(self, rng):
        x = rng.standard_normal(10)
        np.testing.assert_array_equal(quantize_uniform(x, 0, -1, 1), np.zeros(10))

    def test_one_bit_symmetric_is_sign(self):
        x = np.array([-0.7, -0.1, 0.3, 0.9])
        out = quantize_uniform(x, 1, -1.0, 1.0)
        np.testing.assert_array_equal(out, [-1.0, -1.0, 1.0, 1.0])

    def test_clipping_below(self):
        out = quantize_uniform(np.array([-5.0]), 4, -1.0, 1.0)
        assert out[0] == -1.0

    def test_clipping_above(self):
        out = quantize_uniform(np.array([5.0]), 4, -1.0, 1.0)
        assert out[0] == 1.0

    def test_endpoints_representable(self):
        out = quantize_uniform(np.array([-1.0, 1.0]), 3, -1.0, 1.0)
        np.testing.assert_array_equal(out, [-1.0, 1.0])

    def test_degenerate_range(self):
        out = quantize_uniform(np.array([1.0, 2.0]), 3, 0.5, 0.5)
        np.testing.assert_array_equal(out, [0.5, 0.5])

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            quantize_uniform(np.zeros(2), 2, 1.0, -1.0)

    def test_known_two_bit_grid(self):
        """2 bits over [0,3] -> grid {0,1,2,3}."""
        x = np.array([0.4, 1.6, 2.4, 2.6])
        out = quantize_uniform(x, 2, 0.0, 3.0)
        np.testing.assert_array_equal(out, [0.0, 2.0, 2.0, 3.0])

    def test_more_bits_reduce_error(self, rng):
        x = rng.uniform(-1, 1, 1000)
        errors = [
            np.abs(quantize_uniform(x, bits, -1, 1) - x).mean() for bits in (1, 2, 4, 8)
        ]
        assert errors == sorted(errors, reverse=True)


class TestUniformQuantizerClass:
    def test_for_weights_symmetric(self, rng):
        w = rng.standard_normal(100) * 3
        quantizer = UniformQuantizer.for_weights(w)
        assert quantizer.lower == -quantizer.upper
        assert quantizer.upper == pytest.approx(np.abs(w).max())

    def test_for_weights_empty(self):
        quantizer = UniformQuantizer.for_weights(np.zeros(0))
        assert quantizer.lower == quantizer.upper == 0.0

    def test_for_activations_zero_lower(self):
        quantizer = UniformQuantizer.for_activations(7.0)
        assert quantizer.lower == 0.0
        assert quantizer.upper == 7.0

    def test_grid_size(self):
        quantizer = UniformQuantizer(-1, 1)
        assert len(quantizer.grid(3)) == 8
        assert len(quantizer.grid(0)) == 1

    def test_grid_endpoints(self):
        grid = UniformQuantizer(-2, 2).grid(4)
        assert grid[0] == -2.0
        assert grid[-1] == 2.0

    def test_repr(self):
        assert "[-1.0, 1.0]" in repr(UniformQuantizer(-1, 1))


class TestQuantizePerFilter:
    def test_mixed_bits_per_filter(self, rng):
        weight = rng.standard_normal((3, 4))
        bits = np.array([0, 1, 4])
        out = quantize_per_filter(weight, bits)
        np.testing.assert_array_equal(out[0], np.zeros(4))
        bound = np.abs(weight).max()
        np.testing.assert_array_equal(np.abs(out[1]), np.full(4, bound))

    def test_range_shared_across_layer(self, rng):
        """The clip range comes from the whole layer, not per filter."""
        weight = np.array([[0.1, 0.1], [10.0, -10.0]])
        out = quantize_per_filter(weight, np.array([1, 1]))
        # filter 0 values snap to +/-10 (layer range), not +/-0.1
        np.testing.assert_array_equal(np.abs(out[0]), [10.0, 10.0])

    def test_conv_weight_shape(self, rng):
        weight = rng.standard_normal((4, 3, 3, 3))
        out = quantize_per_filter(weight, np.array([0, 2, 4, 8]))
        assert out.shape == weight.shape
        np.testing.assert_array_equal(out[0], np.zeros((3, 3, 3)))

    def test_wrong_bit_count_raises(self, rng):
        with pytest.raises(ValueError):
            quantize_per_filter(rng.standard_normal((3, 4)), np.array([1, 2]))

    def test_high_bits_nearly_identity(self, rng):
        weight = rng.standard_normal((2, 50))
        out = quantize_per_filter(weight, np.array([16, 16]))
        np.testing.assert_allclose(out, weight, atol=1e-3)


class TestAverageBitWidth:
    def test_single_layer(self):
        avg = average_bit_width({"a": np.array([2, 4])}, {"a": 10})
        assert avg == pytest.approx(3.0)

    def test_weighted_by_filter_size(self):
        avg = average_bit_width(
            {"small": np.array([0]), "big": np.array([4])},
            {"small": 1, "big": 3},
        )
        assert avg == pytest.approx(3.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            average_bit_width({}, {})


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=16),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)


class TestQuantizerProperties:
    @given(x=finite_arrays, bits=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_output_within_range(self, x, bits):
        out = quantize_uniform(x, bits, -2.0, 3.0)
        assert np.all(out >= -2.0) and np.all(out <= 3.0)

    @given(x=finite_arrays, bits=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, x, bits):
        once = quantize_uniform(x, bits, -2.0, 3.0)
        twice = quantize_uniform(once, bits, -2.0, 3.0)
        np.testing.assert_allclose(once, twice, atol=1e-12)

    @given(x=finite_arrays, bits=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_error_bounded_by_half_step(self, x, bits):
        lower, upper = -2.0, 3.0
        out = quantize_uniform(x, bits, lower, upper)
        step = (upper - lower) / (2 ** bits - 1) if bits > 0 else upper - lower
        clipped = np.clip(x, lower, upper)
        assert np.all(np.abs(out - clipped) <= step / 2 + 1e-9)

    @given(
        x=st.lists(st.floats(-10, 10), min_size=2, max_size=20).map(np.array),
        bits=st.integers(1, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_non_decreasing(self, x, bits):
        x = np.sort(x)
        out = quantize_uniform(x, bits, -10.0, 10.0)
        assert np.all(np.diff(out) >= -1e-12)

    @given(x=finite_arrays, bits=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_values_on_grid(self, x, bits):
        quantizer = UniformQuantizer(-2.0, 3.0)
        out = quantizer(x, bits)
        grid = quantizer.grid(bits)
        distances = np.abs(out.reshape(-1, 1) - grid.reshape(1, -1)).min(axis=1)
        assert np.all(distances < 1e-9)

    @given(
        bits=hnp.arrays(
            dtype=np.int64,
            shape=st.integers(1, 10),
            elements=st.integers(0, 8),
        ),
        per_filter=st.integers(1, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_average_in_bit_range(self, bits, per_filter):
        avg = average_bit_width({"layer": bits}, {"layer": per_filter})
        assert bits.min() <= avg <= bits.max()
