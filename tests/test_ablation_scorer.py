"""Tests for the exact ablation scorer (eq. 4) and its agreement with the
Taylor approximation (eq. 5)."""

import numpy as np
import pytest
from scipy import stats

from repro.core.ablation import AblationScorer
from repro.core.importance import ImportanceScorer
from repro.models.mlp import MLP
from repro.nn import Module


@pytest.fixture(scope="module")
def class_batches(tiny_dataset):
    return tiny_dataset.class_batches(8, split="val")


@pytest.fixture(scope="module")
def ablation_result(trained_mlp, class_batches):
    scorer = AblationScorer(trained_mlp)
    result = scorer.score(class_batches)
    return scorer, result


class TestAblationScorer:
    def test_scores_bounded_by_class_count(self, ablation_result, tiny_dataset):
        _, result = ablation_result
        assert result.num_classes == tiny_dataset.num_classes
        for gamma in result.neuron_scores.values():
            assert gamma.min() >= 0.0
            assert gamma.max() <= tiny_dataset.num_classes + 1e-12

    def test_one_score_per_unit(self, trained_mlp, ablation_result):
        _, result = ablation_result
        taps = trained_mlp.tap_modules()
        for name in taps:
            layer = getattr(trained_mlp, name)
            assert result.neuron_scores[name].shape == (layer.out_features,)

    def test_beta_shapes(self, ablation_result, tiny_dataset):
        _, result = ablation_result
        for name, beta in result.beta.items():
            assert beta.shape[0] == tiny_dataset.num_classes
            assert np.all((0.0 <= beta) & (beta <= 1.0))

    def test_forward_pass_count_tracked(self, ablation_result):
        scorer, _ = ablation_result
        # One baseline + per-unit forwards per class at minimum.
        assert scorer.forward_passes > 0

    def test_model_forwards_restored(self, trained_mlp, ablation_result):
        taps = trained_mlp.tap_modules()
        assert all("forward" not in module.__dict__ for module in taps.values())

    def test_empty_batches_rejected(self, trained_mlp):
        with pytest.raises(ValueError, match="empty"):
            AblationScorer(trained_mlp).score({})

    def test_bad_class_index_rejected(self, trained_mlp, tiny_dataset):
        batches = {99: tiny_dataset.val_images[:4]}
        with pytest.raises(ValueError, match="out of range"):
            AblationScorer(trained_mlp).score(batches)

    def test_model_without_taps_rejected(self):
        class Plain(Module):
            def forward(self, x):
                return x

        with pytest.raises(TypeError, match="tap_modules"):
            AblationScorer(Plain())


class TestRelativeEps:
    def test_invalid_relative_eps(self, trained_mlp):
        with pytest.raises(ValueError, match="relative_eps"):
            AblationScorer(trained_mlp, relative_eps=0.0)

    def test_relative_threshold_is_stricter(self, trained_mlp, class_batches):
        absolute = AblationScorer(trained_mlp).score(class_batches)
        relative = AblationScorer(trained_mlp, relative_eps=0.05).score(class_batches)
        for name in absolute.neuron_scores:
            # A 5%-output-change requirement can only shrink criticality.
            assert np.all(
                relative.neuron_scores[name] <= absolute.neuron_scores[name] + 1e-12
            )

    def test_relative_desaturates_conv_channels(self):
        from repro.models.vgg import VGGSmall

        model = VGGSmall(num_classes=3, image_size=8, width=4, rng=np.random.default_rng(1))
        model.eval()
        rng = np.random.default_rng(2)
        batches = {m: rng.standard_normal((4, 3, 8, 8)) for m in range(3)}
        absolute = AblationScorer(model).score(batches)
        relative = AblationScorer(model, relative_eps=0.05).score(batches)
        # Under the absolute near-zero threshold conv channels saturate
        # at the class count; the relative threshold discriminates.
        saturated = sum(
            float(np.ptp(absolute.neuron_scores[n]))
            for n in ("conv1", "conv2", "conv3", "conv4")
        )
        spread = sum(
            float(np.ptp(relative.neuron_scores[n]))
            for n in ("conv1", "conv2", "conv3", "conv4")
        )
        assert spread >= saturated


class TestConvTaps:
    """Conv taps ablate whole output channels (filter granularity)."""

    @pytest.fixture(scope="class")
    def vgg_scores(self):
        from repro.models.vgg import VGGSmall

        model = VGGSmall(num_classes=3, image_size=8, width=4, rng=np.random.default_rng(1))
        model.eval()
        rng = np.random.default_rng(2)
        batches = {m: rng.standard_normal((4, 3, 8, 8)) for m in range(3)}
        scorer = AblationScorer(model)
        return model, scorer, scorer.score(batches)

    def test_one_score_per_conv_filter(self, vgg_scores):
        model, _scorer, result = vgg_scores
        for name in ("conv1", "conv2", "conv3", "conv4"):
            layer = getattr(model, name)
            assert result.neuron_scores[name].shape == (layer.out_channels,)

    def test_filter_scores_identity_for_channel_granularity(self, vgg_scores):
        _model, _scorer, result = vgg_scores
        for name, gamma in result.neuron_scores.items():
            np.testing.assert_array_equal(result.filter_scores()[name], gamma)

    def test_forward_count_accounts_all_units(self, vgg_scores):
        model, scorer, _result = vgg_scores
        units = sum(
            getattr(model, n).out_channels if n.startswith("conv") else getattr(model, n).out_features
            for n in model.tap_modules()
        )
        classes = 3
        # units per class + 1 baseline per class + 1 shape probe.
        assert scorer.forward_passes == classes * (units + 1) + 1


class TestTaylorAgreement:
    """[16]'s claim, reproduced: the Taylor score (eq. 5) ranks units like
    the exact ablation score (eq. 4)."""

    def test_rankings_correlate(self, trained_mlp, class_batches, ablation_result):
        _, exact = ablation_result
        taylor = ImportanceScorer(trained_mlp).score(class_batches)
        exact_scores = exact.filter_scores()
        taylor_scores = taylor.filter_scores()
        for name in exact_scores:
            e, t = exact_scores[name], taylor_scores[name]
            if np.ptp(e) == 0 or np.ptp(t) == 0:
                continue  # constant scores have no ranking to compare
            rho = stats.spearmanr(e, t).statistic
            assert rho > 0.5, f"layer {name}: Taylor/ablation rank corr {rho:.2f}"

    def test_dead_neurons_score_zero_in_both(self, tiny_dataset, class_batches):
        # A neuron whose outgoing weights are zero influences nothing:
        # both scorers must assign it score 0.
        ds = tiny_dataset
        model = MLP(
            in_features=3 * 8 * 8,
            hidden=(12, 8),
            num_classes=ds.num_classes,
            rng=np.random.default_rng(0),
        )
        model.eval()
        # Kill neuron 3 of fc1's output: zero its outgoing row AND the
        # incoming weights of downstream consumers (column 3 of fc2).
        model.fc2.weight.data[:, 3] = 0.0
        exact = AblationScorer(model).score(class_batches)
        taylor = ImportanceScorer(model).score(class_batches)
        assert exact.neuron_scores["fc1"][3] == 0.0
        assert taylor.neuron_scores["fc1"][3] == 0.0
