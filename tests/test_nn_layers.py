"""Tests for the standard layers: shapes, semantics, statistics."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn import init
from repro.tensor import Tensor


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(5, 3, rng=rng)
        assert layer(Tensor(np.zeros((7, 5)))).shape == (7, 3)

    def test_weight_shape_out_in(self, rng):
        layer = Linear(5, 3, rng=rng)
        assert layer.weight.shape == (3, 5)

    def test_no_bias(self, rng):
        layer = Linear(5, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_deterministic_with_seed(self):
        a = Linear(4, 4, rng=np.random.default_rng(0))
        b = Linear(4, 4, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_effective_weight_is_raw_weight(self, rng):
        layer = Linear(3, 2, rng=rng)
        assert layer.effective_weight() is layer.weight

    def test_computes_affine_map(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.standard_normal((4, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, atol=1e-12)


class TestConv2d:
    def test_output_shape_padded(self, rng):
        layer = Conv2d(3, 8, 3, padding=1, rng=rng)
        assert layer(Tensor(np.zeros((2, 3, 8, 8)))).shape == (2, 8, 8, 8)

    def test_output_shape_strided(self, rng):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        assert layer(Tensor(np.zeros((2, 3, 8, 8)))).shape == (2, 8, 4, 4)

    def test_weight_shape(self, rng):
        layer = Conv2d(3, 8, 5, rng=rng)
        assert layer.weight.shape == (8, 3, 5, 5)

    def test_no_bias_option(self, rng):
        layer = Conv2d(3, 8, 3, bias=False, rng=rng)
        assert layer.bias is None

    def test_repr_mentions_geometry(self, rng):
        assert "k=3" in repr(Conv2d(3, 8, 3, rng=rng))


class TestBatchNorm2d:
    def test_training_normalizes_batch(self, rng):
        bn = BatchNorm2d(4)
        x = Tensor(rng.standard_normal((8, 4, 5, 5)) * 3 + 2)
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0, atol=1e-10)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), 1, atol=1e-3)

    def test_running_stats_updated_in_training(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.standard_normal((16, 2, 4, 4)) + 5.0)
        bn(x)
        assert np.all(bn.running_mean > 0)
        assert bn.num_batches_tracked[0] == 1

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        for _ in range(50):
            bn(Tensor(rng.standard_normal((16, 2, 4, 4)) * 2 + 3))
        bn.eval()
        x = Tensor(rng.standard_normal((4, 2, 4, 4)) * 2 + 3)
        out = bn(x)
        assert abs(out.data.mean()) < 0.3

    def test_eval_no_stat_update(self, rng):
        bn = BatchNorm2d(2)
        bn(Tensor(rng.standard_normal((4, 2, 3, 3))))
        bn.eval()
        mean_before = bn.running_mean.copy()
        bn(Tensor(rng.standard_normal((4, 2, 3, 3)) + 10))
        np.testing.assert_array_equal(bn.running_mean, mean_before)

    def test_affine_parameters_trainable(self, rng):
        bn = BatchNorm2d(3)
        x = Tensor(rng.standard_normal((4, 3, 2, 2)), requires_grad=True)
        bn(x).sum().backward()
        assert bn.weight.grad is not None
        assert bn.bias.grad is not None

    def test_gradient_flows_through(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.standard_normal((4, 2, 3, 3)), requires_grad=True)
        (bn(x) ** 2).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0


class TestBatchNorm1d:
    def test_normalizes_features(self, rng):
        bn = BatchNorm1d(5)
        out = bn(Tensor(rng.standard_normal((32, 5)) * 4 - 1))
        np.testing.assert_allclose(out.data.mean(axis=0), 0, atol=1e-10)

    def test_eval_mode_shape(self, rng):
        bn = BatchNorm1d(5)
        bn(Tensor(rng.standard_normal((8, 5))))
        bn.eval()
        assert bn(Tensor(rng.standard_normal((3, 5)))).shape == (3, 5)


class TestSimpleLayers:
    def test_relu(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_array_equal(out.data, [0.0, 2.0])

    def test_max_pool_layer(self, rng):
        layer = MaxPool2d(2)
        assert layer(Tensor(np.zeros((1, 2, 6, 6)))).shape == (1, 2, 3, 3)

    def test_avg_pool_layer_custom_stride(self, rng):
        layer = AvgPool2d(3, stride=1)
        assert layer(Tensor(np.zeros((1, 1, 5, 5)))).shape == (1, 1, 3, 3)

    def test_global_avg_pool_layer(self, rng):
        layer = GlobalAvgPool2d()
        assert layer(Tensor(np.zeros((2, 7, 4, 4)))).shape == (2, 7)

    def test_flatten_layer(self):
        assert Flatten()(Tensor(np.zeros((2, 3, 4)))).shape == (2, 12)

    def test_identity(self, rng):
        x = Tensor(rng.standard_normal(5))
        assert Identity()(x) is x

    def test_dropout_training_zeroes_some(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones(1000)))
        assert (out.data == 0).sum() > 300

    def test_dropout_eval_identity(self):
        layer = Dropout(0.5)
        layer.eval()
        x = Tensor(np.ones(10))
        assert layer(x) is x

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestInit:
    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_normal((256, 128), rng)
        expected_std = np.sqrt(2.0 / 128)
        assert w.std() == pytest.approx(expected_std, rel=0.1)

    def test_kaiming_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform((64, 64), rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 64)
        assert np.abs(w).max() <= bound

    def test_conv_fan_computation(self):
        fan_in, fan_out = init._fan_in_out((16, 8, 3, 3))
        assert fan_in == 8 * 9
        assert fan_out == 16 * 9

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.xavier_normal((300, 100), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 400), rel=0.1)

    def test_xavier_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((50, 50), rng)
        assert np.abs(w).max() <= np.sqrt(6.0 / 100)

    def test_unsupported_shape_raises(self):
        with pytest.raises(ValueError):
            init._fan_in_out((3,))

    def test_uniform_bias_bound(self):
        rng = np.random.default_rng(0)
        b = init.uniform_bias((8, 16), rng)
        assert np.abs(b).max() <= 1.0 / 4.0
        assert b.shape == (8,)
