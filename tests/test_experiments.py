"""Tests for the experiment presets and figure harnesses (tiny scale)."""

import numpy as np
import pytest

from repro.experiments import SCALES, get_dataset, get_pretrained
from repro.experiments.fig4 import search_range_for_budget
from repro.experiments.presets import clear_caches, get_scale


class TestPresets:
    def test_scales_registered(self):
        assert {"tiny", "small", "paper"} <= set(SCALES)

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_synth10_geometry(self):
        ds = get_dataset("synth10", scale="tiny")
        assert ds.num_classes == 10
        assert ds.config.image_size == 16

    def test_synth100_class_count(self):
        ds = get_dataset("synth100", scale="tiny")
        assert ds.num_classes == 100

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            get_dataset("imagenet")

    def test_dataset_deterministic(self):
        a = get_dataset("synth10", scale="tiny", seed=4)
        b = get_dataset("synth10", scale="tiny", seed=4)
        np.testing.assert_array_equal(a.train_images, b.train_images)


class TestPretrainedCache:
    def test_memory_cache_returns_same_model(self, tmp_path, monkeypatch):
        import repro.experiments.presets as presets

        monkeypatch.setattr(presets, "_CACHE_DIR", tmp_path)
        clear_caches()
        model1, _, acc1 = get_pretrained("mlp", "synth10", scale="tiny", seed=0)
        model2, _, acc2 = get_pretrained("mlp", "synth10", scale="tiny", seed=0)
        assert model1 is model2
        assert acc1 == acc2

    def test_disk_cache_roundtrip(self, tmp_path, monkeypatch):
        import repro.experiments.presets as presets

        monkeypatch.setattr(presets, "_CACHE_DIR", tmp_path)
        clear_caches()
        model1, _, acc1 = get_pretrained("mlp", "synth10", scale="tiny", seed=1)
        weights = model1.fc0.weight.data.copy()
        clear_caches()  # force disk reload
        model2, _, acc2 = get_pretrained("mlp", "synth10", scale="tiny", seed=1)
        assert model1 is not model2
        np.testing.assert_array_equal(model2.fc0.weight.data, weights)
        assert acc2 == pytest.approx(acc1)

    def test_pretrained_model_learns(self, tmp_path, monkeypatch):
        import repro.experiments.presets as presets

        monkeypatch.setattr(presets, "_CACHE_DIR", tmp_path)
        clear_caches()
        _, _, accuracy = get_pretrained("mlp", "synth10", scale="tiny", seed=2)
        assert accuracy > 0.5  # well above the 10% chance level


class TestSearchRange:
    def test_paper_mapping(self):
        assert search_range_for_budget(2.0) == 4
        assert search_range_for_budget(3.0) == 5
        assert search_range_for_budget(4.0) == 6

    def test_sub_two_bit_budgets_use_tight_range(self):
        # Wide ranges at B=1.0 produce near-all-1-bit arrangements that
        # refine poorly; the tight {0..2} range recovers much better.
        assert search_range_for_budget(1.0) == 2
        assert search_range_for_budget(1.5) == 3


@pytest.mark.slow
class TestFigureHarnesses:
    """End-to-end figure runs at tiny scale (seconds each)."""

    def test_fig2_histograms_structure(self, tmp_path, monkeypatch):
        import repro.experiments.presets as presets
        from repro.experiments import fig2

        monkeypatch.setattr(presets, "_CACHE_DIR", tmp_path)
        clear_caches()
        result = fig2.run(scale="tiny", bins=10)
        assert len(result.histograms) == 8  # layers 0-7 as in the paper
        for counts, edges in result.histograms.values():
            assert edges[0] == 0.0 and edges[-1] == 10.0
        text = fig2.render(result)
        assert "Figure 2" in text

    def test_fig3_snapshots(self, tmp_path, monkeypatch):
        import repro.experiments.presets as presets
        from repro.experiments import fig3

        monkeypatch.setattr(presets, "_CACHE_DIR", tmp_path)
        clear_caches()
        result = fig3.run(scale="tiny")
        assert result.search.average_bits <= 2.0 + 1e-9
        assert len(result.snapshots) >= 1
        assert "Figure 3" in fig3.render(result)

    def test_fig6_arrangement(self, tmp_path, monkeypatch):
        import repro.experiments.presets as presets
        from repro.experiments import fig6

        monkeypatch.setattr(presets, "_CACHE_DIR", tmp_path)
        clear_caches()
        result = fig6.run(scale="tiny")
        assert result.avg_bits <= 2.0 + 1e-9
        assert len(result.summary) == 7  # quantized layers 1-7
        assert np.all(np.diff(result.thresholds) >= -1e-12)
        assert "Figure 6" in fig6.render(result)
