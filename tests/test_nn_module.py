"""Tests for the Module system: registration, traversal, state, hooks."""

import numpy as np
import pytest

from repro.nn import Linear, Module, ModuleList, Parameter, ReLU, Sequential
from repro.tensor import Tensor


class Branching(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 3, rng=np.random.default_rng(0))
        self.fc2 = Linear(3, 2, rng=np.random.default_rng(1))
        self.activation = ReLU()
        self.scale = Parameter(np.ones(1))
        self.register_buffer("counter", np.zeros(1))

    def forward(self, x):
        return self.fc2(self.activation(self.fc1(x))) * self.scale


class TestRegistration:
    def test_parameters_registered_on_setattr(self):
        model = Branching()
        names = [name for name, _ in model.named_parameters()]
        assert "scale" in names
        assert "fc1.weight" in names
        assert "fc2.bias" in names

    def test_parameter_count(self):
        model = Branching()
        assert len(model.parameters()) == 5  # 2x(W,b) + scale

    def test_num_parameters_counts_scalars(self):
        model = Branching()
        expected = 4 * 3 + 3 + 3 * 2 + 2 + 1
        assert model.num_parameters() == expected

    def test_module_children_registered(self):
        model = Branching()
        assert set(model._modules) == {"fc1", "fc2", "activation"}

    def test_reassignment_replaces_registration(self):
        model = Branching()
        model.fc1 = Linear(4, 3, rng=np.random.default_rng(2))
        assert len([n for n, _ in model.named_parameters() if n.startswith("fc1")]) == 2

    def test_buffers_registered(self):
        model = Branching()
        assert dict(model.named_buffers())["counter"].shape == (1,)

    def test_set_buffer_unknown_raises(self):
        model = Branching()
        with pytest.raises(KeyError):
            model._set_buffer("nope", np.zeros(1))

    def test_named_modules_paths(self):
        model = Branching()
        names = dict(model.named_modules())
        assert "" in names and "fc1" in names and "fc2" in names

    def test_modules_iterates_all(self):
        model = Branching()
        assert len(list(model.modules())) == 4  # self + 3 children

    def test_apply_visits_every_module(self):
        model = Branching()
        visited = []
        model.apply(lambda m: visited.append(type(m).__name__))
        assert "Branching" in visited and "Linear" in visited


class TestModes:
    def test_train_eval_propagate(self):
        model = Branching()
        model.eval()
        assert not model.training
        assert not model.fc1.training
        model.train()
        assert model.fc2.training

    def test_zero_grad_clears_all(self):
        model = Branching()
        out = model(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor(np.zeros(1)))


class TestStateDict:
    def test_roundtrip_exact(self):
        model = Branching()
        state = model.state_dict()
        other = Branching()
        other.load_state_dict(state)
        for (_, p1), (_, p2) in zip(model.named_parameters(), other.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_state_dict_contains_buffers(self):
        assert "counter" in Branching().state_dict()

    def test_state_is_copy_not_view(self):
        model = Branching()
        state = model.state_dict()
        model.fc1.weight.data += 1.0
        assert not np.allclose(state["fc1.weight"], model.fc1.weight.data)

    def test_load_shape_mismatch_raises(self):
        model = Branching()
        state = model.state_dict()
        state["fc1.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_load_strict_missing_raises(self):
        model = Branching()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_non_strict_allows_missing(self):
        model = Branching()
        state = model.state_dict()
        del state["scale"]
        model.load_state_dict(state, strict=False)

    def test_load_strict_unexpected_raises(self):
        model = Branching()
        state = model.state_dict()
        state["extra"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_buffer_roundtrip(self):
        model = Branching()
        model._set_buffer("counter", np.array([42.0]))
        other = Branching()
        other.load_state_dict(model.state_dict())
        assert other.counter[0] == 42.0


class TestContainers:
    def test_sequential_applies_in_order(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(4, 3, rng=rng), ReLU(), Linear(3, 2, rng=rng))
        out = seq(Tensor(np.ones((1, 4))))
        assert out.shape == (1, 2)

    def test_sequential_len_getitem_iter(self):
        seq = Sequential(ReLU(), ReLU())
        assert len(seq) == 2
        assert isinstance(seq[0], ReLU)
        assert len(list(iter(seq))) == 2

    def test_sequential_append(self):
        seq = Sequential(ReLU())
        seq.append(ReLU())
        assert len(seq) == 2

    def test_sequential_params_from_children(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(2, 2, rng=rng), Linear(2, 2, rng=rng))
        assert len(seq.parameters()) == 4

    def test_module_list_registration(self):
        rng = np.random.default_rng(0)
        ml = ModuleList([Linear(2, 2, rng=rng), Linear(2, 2, rng=rng)])
        assert len(ml) == 2
        assert len(ml.parameters()) == 4

    def test_module_list_not_callable(self):
        with pytest.raises(RuntimeError):
            ModuleList([])(Tensor(np.zeros(1)))

    def test_repr_contains_children(self):
        text = repr(Branching())
        assert "fc1" in text and "Linear" in text


class TestHooks:
    def test_forward_hook_receives_output(self):
        model = Branching()
        seen = []
        handle = model.fc1.register_forward_hook(lambda mod, out: seen.append(out))
        model(Tensor(np.ones((2, 4))))
        assert len(seen) == 1
        assert seen[0].shape == (2, 3)
        handle.remove()

    def test_hook_remove_stops_calls(self):
        model = Branching()
        seen = []
        handle = model.fc1.register_forward_hook(lambda mod, out: seen.append(1))
        handle.remove()
        model(Tensor(np.ones((1, 4))))
        assert seen == []

    def test_multiple_hooks_all_fire(self):
        model = Branching()
        seen = []
        model.fc1.register_forward_hook(lambda m, o: seen.append("a"))
        model.fc1.register_forward_hook(lambda m, o: seen.append("b"))
        model(Tensor(np.ones((1, 4))))
        assert seen == ["a", "b"]

    def test_hook_remove_idempotent(self):
        model = Branching()
        handle = model.fc1.register_forward_hook(lambda m, o: None)
        handle.remove()
        handle.remove()  # no error
