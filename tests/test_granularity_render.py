"""Tests for the granularity experiment's result container and rendering."""

from collections import OrderedDict

from repro.experiments.granularity import GranularityResult, render
from repro.hw.report import CostSummary


def make_summary(label: str, energy: float) -> CostSummary:
    return CostSummary(
        label=label,
        average_bits=2.0,
        storage_kib=10.0,
        energy_uj=energy,
        latency_us=5.0,
        fp32_storage_kib=160.0,
        fp32_energy_uj=40.0,
        fp32_latency_us=50.0,
    )


def make_result() -> GranularityResult:
    result = GranularityResult(fp_accuracy=0.95, budget=2.0)
    for name, accuracy, energy in (
        ("uniform", 0.88, 2.5),
        ("layerwise", 0.90, 2.4),
        ("cq", 0.93, 2.3),
    ):
        result.accuracy[name] = accuracy
        result.avg_bits[name] = 2.0
        result.cost[name] = make_summary(name, energy)
    return result


class TestRender:
    def test_all_granularities_listed(self):
        table = render(make_result())
        for name in ("uniform", "layerwise", "cq"):
            assert name in table

    def test_fp_reference_shown(self):
        assert "0.9500" in render(make_result())

    def test_cost_columns_present(self):
        table = render(make_result())
        assert "energy (uJ)" in table
        assert "storage" in table

    def test_savings_formatted_as_multipliers(self):
        table = render(make_result())
        assert "x16.0" in table  # 160 KiB fp32 / 10 KiB quantized


class TestCostSummaryMath:
    def test_compression(self):
        assert make_summary("s", 2.0).compression == 16.0

    def test_energy_saving(self):
        assert make_summary("s", 2.0).energy_saving == 20.0

    def test_speedup(self):
        assert make_summary("s", 2.0).speedup == 10.0

    def test_zero_cost_reports_infinity(self):
        summary = CostSummary(
            label="degenerate",
            average_bits=0.0,
            storage_kib=0.0,
            energy_uj=0.0,
            latency_us=0.0,
            fp32_storage_kib=1.0,
            fp32_energy_uj=1.0,
            fp32_latency_us=1.0,
        )
        assert summary.compression == float("inf")
        assert summary.energy_saving == float("inf")
        assert summary.speedup == float("inf")
