"""Tests for loss modules, in particular the refining loss of eq. (10)."""

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, DistillationLoss, KLDivLoss, MSELoss
from repro.tensor import Tensor
from repro.tensor import functional as F


class TestCrossEntropyLoss:
    def test_matches_functional(self, rng):
        logits = Tensor(rng.standard_normal((4, 5)))
        labels = np.array([0, 1, 2, 3])
        module_loss = CrossEntropyLoss()(logits, labels)
        functional_loss = F.cross_entropy(logits, labels)
        assert float(module_loss.data) == pytest.approx(float(functional_loss.data))


class TestMSELoss:
    def test_zero_for_equal(self, rng):
        x = Tensor(rng.standard_normal(5))
        assert float(MSELoss()(x, x.copy()).data) == pytest.approx(0.0)

    def test_known_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        target = Tensor(np.array([0.0, 0.0]))
        assert float(MSELoss()(pred, target).data) == pytest.approx(2.5)

    def test_target_detached(self, rng):
        pred = Tensor(rng.standard_normal(3), requires_grad=True)
        target = Tensor(rng.standard_normal(3), requires_grad=True)
        MSELoss()(pred, target).backward()
        assert pred.grad is not None
        assert target.grad is None

    def test_accepts_numpy_target(self, rng):
        pred = Tensor(rng.standard_normal(3))
        loss = MSELoss()(pred, pred.data.copy())
        assert float(loss.data) == pytest.approx(0.0)


class TestKLDivLoss:
    def test_zero_for_identical(self, rng):
        logits = Tensor(rng.standard_normal((3, 4)))
        loss = KLDivLoss()(logits, Tensor(logits.data.copy()))
        assert float(loss.data) == pytest.approx(0.0, abs=1e-12)

    def test_temperature_stored(self):
        assert KLDivLoss(temperature=4.0).temperature == 4.0


class TestDistillationLoss:
    def test_alpha_one_is_pure_ce(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)))
        teacher = Tensor(rng.standard_normal((4, 3)))
        labels = np.array([0, 1, 2, 0])
        loss = DistillationLoss(alpha=1.0)(logits, labels, teacher)
        ce = F.cross_entropy(logits, labels)
        assert float(loss.data) == pytest.approx(float(ce.data))

    def test_alpha_zero_is_pure_kl(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)))
        teacher = Tensor(rng.standard_normal((4, 3)))
        labels = np.array([0, 1, 2, 0])
        loss = DistillationLoss(alpha=0.0)(logits, labels, teacher)
        kl = F.kl_divergence(teacher, logits)
        assert float(loss.data) == pytest.approx(float(kl.data))

    def test_convex_combination(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)))
        teacher = Tensor(rng.standard_normal((4, 3)))
        labels = np.array([0, 1, 2, 0])
        alpha = 0.3
        loss = DistillationLoss(alpha=alpha)(logits, labels, teacher)
        expected = alpha * float(F.cross_entropy(logits, labels).data) + (
            1 - alpha
        ) * float(F.kl_divergence(teacher, logits).data)
        assert float(loss.data) == pytest.approx(expected)

    def test_without_teacher_falls_back_to_ce(self, rng):
        logits = Tensor(rng.standard_normal((2, 3)))
        labels = np.array([0, 1])
        loss = DistillationLoss(alpha=0.3)(logits, labels, None)
        assert float(loss.data) == pytest.approx(
            float(F.cross_entropy(logits, labels).data)
        )

    def test_invalid_alpha_raises(self):
        with pytest.raises(ValueError):
            DistillationLoss(alpha=1.5)

    def test_gradient_reaches_student_not_teacher(self, rng):
        student = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        teacher = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        labels = np.array([0, 1, 2])
        DistillationLoss(alpha=0.3)(student, labels, teacher).backward()
        assert student.grad is not None
        assert teacher.grad is None

    def test_paper_default_alpha(self):
        assert DistillationLoss().alpha == pytest.approx(0.3)
