"""Tests for repro.hw.report: cost summaries and comparison tables."""

import numpy as np
import pytest

from repro.hw.report import comparison_table, cost_summary, layer_cost_table
from repro.hw.profile import profile_model
from repro.models.vgg import VGGSmall
from repro.quant.bitmap import BitWidthMap
from repro.quant.qmodules import extract_bit_map, quantize_model


@pytest.fixture(scope="module")
def setup():
    model = VGGSmall(num_classes=4, image_size=8, width=8, rng=np.random.default_rng(0))
    profile = profile_model(model, (3, 8, 8))
    quantize_model(model, max_bits=4, act_bits=4)
    return profile, extract_bit_map(model)


class TestCostSummary:
    def test_compression_matches_bits_ratio(self, setup):
        profile, bit_map = setup
        summary = cost_summary(profile, bit_map, act_bits=4, label="uniform-4")
        # All quantized filters at 4 bits -> exactly 8x smaller than FP32.
        assert summary.compression == pytest.approx(32 / 4)

    def test_savings_are_positive(self, setup):
        profile, bit_map = setup
        summary = cost_summary(profile, bit_map, act_bits=4)
        assert summary.energy_saving > 1.0
        assert summary.speedup > 1.0
        assert summary.average_bits == pytest.approx(4.0)

    def test_lower_bits_compress_more(self, setup):
        profile, bit_map = setup
        two_bit = BitWidthMap(
            {name: np.full(len(bit_map[name]), 2) for name in bit_map},
            {name: bit_map.weights_per_filter(name) for name in bit_map},
        )
        s4 = cost_summary(profile, bit_map, act_bits=4)
        s2 = cost_summary(profile, two_bit, act_bits=2)
        assert s2.compression > s4.compression
        assert s2.energy_uj < s4.energy_uj

    def test_summary_excludes_unquantized_layers(self, setup):
        profile, bit_map = setup
        summary = cost_summary(profile, bit_map, act_bits=4)
        quantized_params = sum(
            profile[name].params for name in profile if name in bit_map
        )
        assert summary.fp32_storage_kib == pytest.approx(quantized_params * 4 / 1024)


class TestTables:
    def test_layer_table_lists_only_mapped_layers(self, setup):
        profile, bit_map = setup
        table = layer_cost_table(profile, bit_map, act_bits=4)
        for name in bit_map.layers():
            assert name in table
        unmapped = [n for n in profile.layers() if n not in bit_map]
        for name in unmapped:
            assert name not in table

    def test_layer_table_has_bound_column(self, setup):
        profile, bit_map = setup
        table = layer_cost_table(profile, bit_map, act_bits=4)
        assert "bound" in table
        assert ("compute" in table) or ("memory" in table)

    def test_comparison_table_rows(self, setup):
        profile, bit_map = setup
        s1 = cost_summary(profile, bit_map, act_bits=4, label="CQ 4.0/4.0")
        s2 = cost_summary(profile, bit_map, act_bits=2, label="CQ 4.0/2.0")
        table = comparison_table([s1, s2])
        assert "CQ 4.0/4.0" in table
        assert "CQ 4.0/2.0" in table
        assert "speedup" in table
