"""Tests for the model zoo: shapes, taps, registry, quantization policy."""

import numpy as np
import pytest

from repro.models import MLP, ResNet20, VGGSmall, available_models, build_model
from repro.models.resnet import BasicBlock
from repro.nn import Identity
from repro.quant.qmodules import quantizable_layer_names, weight_layer_names
from repro.tensor import Tensor


class TestVGGSmall:
    @pytest.fixture(scope="class")
    def model(self):
        return VGGSmall(num_classes=10, image_size=16, width=4, rng=np.random.default_rng(0))

    def test_forward_shape(self, model):
        out = model(Tensor(np.random.default_rng(0).standard_normal((2, 3, 16, 16))))
        assert out.shape == (2, 10)

    def test_nine_weight_layers(self, model):
        assert len(weight_layer_names(model)) == 9

    def test_quantizable_excludes_first_and_output(self, model):
        names = quantizable_layer_names(model)
        assert "conv0" not in names
        assert "fc8" not in names
        assert len(names) == 7

    def test_tap_modules_cover_quantizable(self, model):
        assert list(model.tap_modules()) == quantizable_layer_names(model)

    def test_all_tap_modules_adds_conv0(self, model):
        taps = model.all_tap_modules()
        assert list(taps)[0] == "conv0"
        assert len(taps) == 8  # layers 0-7, as in Figure 2

    def test_invalid_image_size_raises(self):
        with pytest.raises(ValueError):
            VGGSmall(image_size=10)

    def test_width_scales_channels(self):
        narrow = VGGSmall(width=4, rng=np.random.default_rng(0))
        wide = VGGSmall(width=8, rng=np.random.default_rng(0))
        assert wide.num_parameters() > 3 * narrow.num_parameters()

    def test_32px_input(self):
        model = VGGSmall(num_classes=10, image_size=32, width=4, rng=np.random.default_rng(0))
        out = model(Tensor(np.zeros((1, 3, 32, 32))))
        assert out.shape == (1, 10)


class TestResNet20:
    @pytest.fixture(scope="class")
    def model(self):
        return ResNet20(num_classes=10, base_width=4, rng=np.random.default_rng(0))

    def test_forward_shape(self, model):
        out = model(Tensor(np.random.default_rng(0).standard_normal((2, 3, 16, 16))))
        assert out.shape == (2, 10)

    def test_twenty_weight_layers_plus_downsamples(self, model):
        names = weight_layer_names(model)
        # stem + 9 blocks x 2 convs + 2 downsample convs + fc = 22
        assert len(names) == 22

    def test_nine_blocks(self, model):
        assert len(model.blocks) == 9

    def test_downsample_on_stage_boundaries(self, model):
        assert isinstance(model.blocks[0].downsample, Identity)
        assert not isinstance(model.blocks[3].downsample, Identity)
        assert not isinstance(model.blocks[6].downsample, Identity)

    def test_expand_factor_scales_width(self):
        x1 = ResNet20(expand=1, base_width=4, rng=np.random.default_rng(0))
        x5 = ResNet20(expand=5, base_width=4, rng=np.random.default_rng(0))
        assert x5.num_parameters() > 20 * x1.num_parameters()

    def test_taps_cover_block_convs(self, model):
        taps = model.tap_modules()
        assert "blocks.0.conv1" in taps
        assert "blocks.8.conv2" in taps
        assert "blocks.3.downsample.0" in taps

    def test_taps_subset_of_quantizable(self, model):
        quantizable = set(quantizable_layer_names(model))
        assert set(model.tap_modules()) == quantizable

    def test_spatial_downsampling(self, model):
        """Stage strides reduce 16x16 input to 4x4 before pooling."""
        x = Tensor(np.zeros((1, 3, 16, 16)))
        h = model.relu0(model.bn0(model.conv0(x)))
        for block in model.blocks:
            h = block(h)
        assert h.shape[2:] == (4, 4)


class TestBasicBlock:
    def test_identity_shortcut_shape(self):
        block = BasicBlock(8, 8, rng=np.random.default_rng(0))
        out = block(Tensor(np.zeros((2, 8, 8, 8))))
        assert out.shape == (2, 8, 8, 8)

    def test_strided_shortcut_shape(self):
        block = BasicBlock(8, 16, stride=2, rng=np.random.default_rng(0))
        out = block(Tensor(np.zeros((2, 8, 8, 8))))
        assert out.shape == (2, 16, 4, 4)

    def test_residual_contributes(self):
        """Zeroing both convs leaves the (downsampled) input signal."""
        block = BasicBlock(4, 4, rng=np.random.default_rng(0))
        block.conv1.weight.data[...] = 0
        block.conv2.weight.data[...] = 0
        block.eval()
        x = np.abs(np.random.default_rng(0).standard_normal((1, 4, 5, 5)))
        out = block(Tensor(x))
        np.testing.assert_allclose(out.data, np.maximum(x, 0), atol=1e-6)


class TestMLP:
    def test_forward_flattens_images(self):
        model = MLP(3 * 8 * 8, (16, 8), 5, rng=np.random.default_rng(0))
        out = model(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 5)

    def test_needs_two_hidden_layers(self):
        with pytest.raises(ValueError):
            MLP(10, (4,), 2)

    def test_taps_exclude_first_and_output(self):
        model = MLP(10, (8, 6, 4), 2, rng=np.random.default_rng(0))
        assert list(model.tap_modules()) == ["fc1", "fc2"]


class TestRegistry:
    def test_available_models(self):
        assert set(available_models()) == {
            "mlp",
            "resnet20-x1",
            "resnet20-x5",
            "vgg-small",
        }

    def test_build_each_model(self):
        for name in available_models():
            model = build_model(name, num_classes=4, image_size=16, seed=0)
            out = model(Tensor(np.zeros((1, 3, 16, 16))))
            assert out.shape == (1, 4)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("alexnet")

    def test_seed_reproducibility(self):
        a = build_model("mlp", seed=3)
        b = build_model("mlp", seed=3)
        np.testing.assert_array_equal(a.fc0.weight.data, b.fc0.weight.data)

    def test_different_seeds_differ(self):
        a = build_model("mlp", seed=1)
        b = build_model("mlp", seed=2)
        assert not np.allclose(a.fc0.weight.data, b.fc0.weight.data)

    def test_kwargs_forwarded(self):
        model = build_model("vgg-small", width=4, seed=0)
        assert model.width == 4

    def test_resnet_expand_preset(self):
        x5 = build_model("resnet20-x5", base_width=2, seed=0)
        assert x5.expand == 5
