"""Slow integration tests: conv nets actually train, quantize and recover."""

import numpy as np
import pytest

from repro.core import CQConfig, ClassBasedQuantizer
from repro.data import ArrayDataset, DataLoader
from repro.data.synthetic import make_synth_cifar
from repro.models import build_model
from repro.optim import SGD, MultiStepLR
from repro.train import Trainer, evaluate_model

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def conv_dataset():
    return make_synth_cifar(
        num_classes=5, image_size=16, train_per_class=30, val_per_class=10,
        test_per_class=10, seed=11,
    )


def train(model, dataset, epochs=12, lr=0.02):
    loader = DataLoader(
        ArrayDataset(dataset.train_images, dataset.train_labels),
        batch_size=50, shuffle=True, seed=0,
    )
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9, weight_decay=1e-4)
    scheduler = MultiStepLR(optimizer, milestones=[epochs // 2, (3 * epochs) // 4])
    Trainer(model, optimizer, scheduler=scheduler).fit(loader, epochs=epochs)
    test_loader = DataLoader(
        ArrayDataset(dataset.test_images, dataset.test_labels), batch_size=50
    )
    return evaluate_model(model, test_loader).accuracy


@pytest.mark.slow
class TestConvTraining:
    def test_vgg_small_learns(self, conv_dataset):
        model = build_model("vgg-small", num_classes=5, image_size=16, seed=0, width=6)
        accuracy = train(model, conv_dataset)
        assert accuracy > 0.6  # 5 classes, chance = 0.2

    def test_resnet20_learns(self, conv_dataset):
        model = build_model("resnet20-x1", num_classes=5, seed=0, base_width=4)
        accuracy = train(model, conv_dataset)
        assert accuracy > 0.6

    def test_vgg_cq_pipeline_recovers(self, conv_dataset):
        model = build_model("vgg-small", num_classes=5, image_size=16, seed=0, width=6)
        fp_accuracy = train(model, conv_dataset)
        config = CQConfig(
            target_avg_bits=3.0, max_bits=5, act_bits=3,
            samples_per_class=8, refine_epochs=12, refine_lr=0.01,
            refine_batch_size=50, seed=0,
        )
        result = ClassBasedQuantizer(config).quantize(model, conv_dataset)
        assert result.average_bits <= 3.0 + 1e-9
        # KD refinement recovers a large part of the quantization drop on
        # this small training set (150 images); exact margins are noisy.
        assert result.accuracy_after_refine >= result.accuracy_before_refine
        assert result.accuracy_after_refine >= fp_accuracy - 0.4

    def test_resnet_cq_pipeline_budget(self, conv_dataset):
        model = build_model("resnet20-x1", num_classes=5, seed=0, base_width=4)
        train(model, conv_dataset, epochs=10)
        config = CQConfig(
            target_avg_bits=2.0, max_bits=4, act_bits=None,
            samples_per_class=8, refine_epochs=4, refine_lr=0.01,
            refine_batch_size=50, seed=0,
        )
        result = ClassBasedQuantizer(config).quantize(model, conv_dataset)
        assert result.average_bits <= 2.0 + 1e-9
        # every block conv got a bit assignment
        assert len(result.bit_map) == 20  # 18 block convs + 2 downsamples

    def test_apn_precision_ladder(self, conv_dataset):
        """APN accuracy should be non-decreasing in precision (allowing
        small noise), the defining property of any-precision training."""
        from repro.baselines import train_apn

        model = build_model("vgg-small", num_classes=5, image_size=16, seed=0, width=6)
        train(model, conv_dataset, epochs=10)
        apn = train_apn(model, conv_dataset, bit_widths=[2, 4], epochs=4, lr=0.01,
                        batch_size=50)
        assert apn.accuracy_by_bits[4] >= apn.accuracy_by_bits[2] - 0.1

    def test_wrapnet_trains_through_overflow(self, conv_dataset):
        from repro.baselines import WrapNetConfig, train_wrapnet

        model = build_model("vgg-small", num_classes=5, image_size=16, seed=0, width=6)
        train(model, conv_dataset, epochs=10)
        result = train_wrapnet(
            model, conv_dataset,
            WrapNetConfig(weight_bits=2, act_bits=4, acc_bits=12),
            epochs=4, lr=0.01, batch_size=50,
        )
        assert result.accuracy > 0.3  # functional, above chance
