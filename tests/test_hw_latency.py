"""Tests for repro.hw.latency: precision-scalable PE array + roofline."""

import numpy as np
import pytest

from repro.hw.latency import AcceleratorParams, LatencyModel
from repro.hw.profile import profile_model
from repro.models.vgg import VGGSmall
from repro.quant.qmodules import extract_bit_map, quantize_model


@pytest.fixture(scope="module")
def vgg_setup():
    model = VGGSmall(num_classes=4, image_size=8, width=8, rng=np.random.default_rng(0))
    profile = profile_model(model, (3, 8, 8))
    quantize_model(model, max_bits=4, act_bits=4)
    return profile, extract_bit_map(model)


class TestAcceleratorParams:
    def test_native_precision_has_unit_scale(self):
        assert AcceleratorParams().throughput_scale(8, 8) == 1.0

    def test_fused_low_precision_multiplies_throughput(self):
        params = AcceleratorParams()
        assert params.throughput_scale(4, 4) == 4.0
        assert params.throughput_scale(2, 8) == 4.0
        assert params.throughput_scale(1, 1) == 64.0

    def test_above_native_precision_never_exceeds_unit(self):
        # A 32-bit operand cannot run faster than one native lane.
        assert AcceleratorParams().throughput_scale(32, 32) == 1.0

    def test_zero_bits_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorParams().throughput_scale(0, 8)


class TestLayerLatency:
    def test_lower_bits_run_faster_in_compute_bound_regime(self, vgg_setup):
        profile, bit_map = vgg_setup
        # Tiny PE array + huge bandwidth forces the compute-bound regime.
        model = LatencyModel(
            AcceleratorParams(num_pes=1, dram_bandwidth_bytes_per_s=1e15)
        )
        layer = profile[bit_map.layers()[0]]
        fast = model.layer_latency(layer, 2, act_bits=2)
        slow = model.layer_latency(layer, 8, act_bits=8)
        assert fast.bound == "compute"
        assert fast.total_s < slow.total_s
        assert fast.total_s == pytest.approx(slow.total_s / 16)

    def test_memory_bound_scales_with_stored_bits(self, vgg_setup):
        profile, bit_map = vgg_setup
        # Huge PE array + tiny bandwidth forces the memory-bound regime.
        model = LatencyModel(
            AcceleratorParams(num_pes=10**9, dram_bandwidth_bytes_per_s=1e3)
        )
        layer = profile[bit_map.layers()[0]]
        narrow = model.layer_latency(layer, 2, act_bits=4)
        wide = model.layer_latency(layer, 4, act_bits=4)
        assert narrow.bound == "memory"
        assert narrow.total_s < wide.total_s

    def test_pruned_filters_skip_compute_and_traffic(self, vgg_setup):
        profile, bit_map = vgg_setup
        model = LatencyModel()
        layer = profile[bit_map.layers()[0]]
        bits = np.full(layer.num_filters, 4)
        full = model.layer_latency(layer, bits, act_bits=4)
        bits[0] = 0
        pruned = model.layer_latency(layer, bits, act_bits=4)
        assert pruned.compute_s < full.compute_s
        assert pruned.memory_s < full.memory_s

    def test_wrong_filter_count_rejected(self, vgg_setup):
        profile, bit_map = vgg_setup
        layer = profile[bit_map.layers()[0]]
        with pytest.raises(ValueError, match="per-filter"):
            LatencyModel().layer_latency(layer, np.ones(layer.num_filters + 3), act_bits=4)

    def test_nonpositive_act_bits_rejected(self, vgg_setup):
        profile, bit_map = vgg_setup
        layer = profile[bit_map.layers()[0]]
        with pytest.raises(ValueError):
            LatencyModel().layer_latency(layer, 4, act_bits=0)


class TestModelLatency:
    def test_totals_add_sequentially(self, vgg_setup):
        profile, bit_map = vgg_setup
        report = LatencyModel().model_latency(profile, bit_map, act_bits=4, unmapped="skip")
        assert report.total_s == pytest.approx(sum(report[n].total_s for n in report))

    def test_quantized_faster_than_fp32(self, vgg_setup):
        profile, bit_map = vgg_setup
        model = LatencyModel()
        quantized = model.model_latency(profile, bit_map, act_bits=4, unmapped="skip")
        fp = model.fp32_latency(profile.subset(bit_map.layers()))
        assert quantized.total_s < fp.total_s

    def test_unmapped_modes(self, vgg_setup):
        profile, bit_map = vgg_setup
        model = LatencyModel()
        assert len(model.model_latency(profile, bit_map, 4, unmapped="fp32")) == len(profile)
        assert len(model.model_latency(profile, bit_map, 4, unmapped="skip")) == len(
            bit_map.layers()
        )
        with pytest.raises(ValueError):
            model.model_latency(profile, bit_map, 4, unmapped="none")
