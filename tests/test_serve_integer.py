"""The integer-MAC serving backend (tier-1).

``ServeConfig(backend="integer")`` executes the packed CQW1 codes
directly — no float weight reconstruction — so the correctness contract
is different from the float engine's bitwise self-parity: integer
answers must agree with the float engine within the **derived rescale
bound** of :func:`repro.serve.integer.integer_parity_rtol`
(docs/architecture.md, Serving → Integer backend), exactly where the
arithmetic allows it (pruned 0-bit filters output exactly ``bias``).

Everything here compiles from a **saved-and-reloaded** artifact — the
bytes on disk, not the in-memory model, are the program under test —
and fuzzes the code paths the packing format makes interesting: 0-bit
pruned filters, mixed 1..8-bit assignments, single-filter layers and
non-byte-aligned packings.
"""

import numpy as np
import pytest

from repro.quant.export import export_quantized_weights
from repro.quant.packing import deserialize_export, serialize_export
from repro.quant.qmodules import (
    calibrate_activations,
    quantize_model,
    quantized_layers,
)
from repro.serve import (
    ArtifactCache,
    ArtifactManifest,
    IntegerBackendParityError,
    IntegerServingModel,
    ReplayRun,
    ServeConfig,
    ServingSession,
    compile_artifact,
    compile_integer_serving,
    integer_parity_rtol,
    load_artifact,
    replay_requests,
    save_artifact,
    verify_integer_parity,
    verify_replay,
)
from repro.quant.integer import (
    compile_integer_layer,
    compile_integer_layer_from_export,
    integer_forward,
)
from repro.tensor.tensor import Tensor, no_grad


def build_random_bits_model(
    max_bits=8, act_bits=None, seed=1, bits_seed=0, image_size=8
):
    """An untrained quantized MLP preset with random per-filter bits in
    ``0..max_bits`` (0 = pruned) — the fuzz workhorse. Architecture
    matches ``build_preset_model`` so its artifacts load back."""
    from repro.experiments.presets import build_preset_model

    model = build_preset_model(
        "mlp", num_classes=4, image_size=image_size, scale="tiny", seed=seed
    )
    quantize_model(model, max_bits=max_bits, act_bits=act_bits)
    bits_rng = np.random.default_rng(bits_seed)
    for layer in quantized_layers(model).values():
        layer.set_bits(
            bits_rng.integers(0, max_bits + 1, size=layer.num_filters)
        )
    if act_bits is not None:
        calibration = bits_rng.standard_normal((16, 3, image_size, image_size))
        calibrate_activations(model, [calibration])
    model.eval()
    manifest = ArtifactManifest(
        model="mlp",
        dataset="synth10",
        scale="tiny",
        seed=seed,
        num_classes=4,
        image_size=image_size,
        max_bits=max_bits,
        act_bits=act_bits,
    )
    return model, manifest


def saved_and_reloaded(model, manifest, tmp_path, name="model.cqw"):
    """Artifact round-tripped through the CQW1 bytes on disk."""
    path = tmp_path / name
    save_artifact(path, model, manifest)
    return path, load_artifact(path)


def assert_within_rescale_bound(got, expected, rtol):
    tolerance = rtol * max(1.0, float(np.max(np.abs(expected))))
    error = float(np.max(np.abs(got - expected)))
    assert error <= tolerance, (
        f"integer backend error {error:.3e} exceeds rescale bound "
        f"{tolerance:.3e}"
    )


class TestIntegerSessions:
    """Session-level contract: serve the saved artifact with integer
    MACs, agree with the float engine within the derived bound."""

    @pytest.mark.parametrize(
        "act_bits,bits_seed",
        [(None, 0), (None, 3), (4, 0), (2, 5), (8, 7)],
        ids=["w-only-s0", "w-only-s3", "act4-s0", "act2-s5", "act8-s7"],
    )
    def test_integer_session_within_bound_of_float_session(
        self, tmp_path, act_bits, bits_seed
    ):
        model, manifest = build_random_bits_model(
            act_bits=act_bits, bits_seed=bits_seed
        )
        path, artifact = saved_and_reloaded(model, manifest, tmp_path)
        inputs = np.random.default_rng(99).standard_normal((12, 3, 8, 8))
        with ServingSession(path, cache=ArtifactCache()) as session:
            expected = session.predict_batch(inputs)
        with ServingSession(
            path, cache=ArtifactCache(), config=ServeConfig(backend="integer")
        ) as session:
            got = session.predict_batch(inputs)
            stats = session.stats
        assert_within_rescale_bound(
            got, expected, integer_parity_rtol(artifact.export)
        )
        assert stats.backend == "integer"

    def test_verify_replay_checks_rescale_bound_for_integer_engines(
        self, tmp_path
    ):
        model, manifest = build_random_bits_model(act_bits=4)
        path, _artifact = saved_and_reloaded(model, manifest, tmp_path)
        inputs = np.random.default_rng(5).standard_normal((32, 3, 8, 8))
        config = ServeConfig(
            batch_window_s=0.01,
            max_batch_size=8,
            record_batches=True,
            backend="integer",
        )
        with ServingSession(path, cache=ArtifactCache(), config=config) as session:
            assert isinstance(session.model, IntegerServingModel)
            run = replay_requests(session, inputs, concurrency=3)
            # Bit-exact self-parity AND the rescale bound vs the float
            # prototype, per executed batch.
            assert verify_replay(
                session, inputs, run, expected=len(inputs)
            ) == len(inputs)

    def test_acc_bits_surfaced_in_stats(self, tmp_path):
        model, manifest = build_random_bits_model(act_bits=4)
        path, _artifact = saved_and_reloaded(model, manifest, tmp_path)
        inputs = np.random.default_rng(2).standard_normal((6, 3, 8, 8))
        with ServingSession(
            path, cache=ArtifactCache(), config=ServeConfig(backend="integer")
        ) as session:
            session.predict_batch(inputs)
            stats = session.stats
        # int x int MACs ran: the widest accumulator is tracked and the
        # summary renders it (the CI smoke greps for "acc_bits").
        assert stats.acc_bits_used > 0
        assert "acc_bits" in stats.summary()

    def test_weight_only_backend_reports_zero_acc_bits(self, tmp_path):
        model, manifest = build_random_bits_model(act_bits=None)
        path, _artifact = saved_and_reloaded(model, manifest, tmp_path)
        with ServingSession(
            path, cache=ArtifactCache(), config=ServeConfig(backend="integer")
        ) as session:
            session.predict(np.zeros((3, 8, 8)))
            stats = session.stats
        assert stats.backend == "integer"
        assert stats.acc_bits_used == 0  # activations stayed float

    def test_bare_model_session_rejects_integer_backend(self):
        model, _manifest = build_random_bits_model(max_bits=4)
        with pytest.raises(ValueError, match="packed codes"):
            ServingSession(model, config=ServeConfig(backend="integer"))

    def test_unknown_backend_rejected(self, tmp_path):
        model, manifest = build_random_bits_model(max_bits=4)
        path, _ = saved_and_reloaded(model, manifest, tmp_path)
        with pytest.raises(ValueError, match="backend"):
            ServingSession(path, config=ServeConfig(backend="int8"))

    def test_float_and_integer_leases_share_one_cache_entry(self, tmp_path):
        model, manifest = build_random_bits_model(max_bits=4)
        path, _ = saved_and_reloaded(model, manifest, tmp_path)
        cache = ArtifactCache()
        with ServingSession(path, cache=cache) as float_session:
            with ServingSession(
                path, cache=cache, config=ServeConfig(backend="integer")
            ) as int_session:
                x = np.random.default_rng(0).standard_normal((3, 8, 8))
                expected = float_session.predict(x)
                got = int_session.predict(x)
        # One parse (hit on the second session), two leases, balanced.
        assert cache.stats.misses == 1 and cache.stats.hits >= 1
        assert cache.stats.leases == 2 and cache.stats.releases == 2
        assert cache.active_leases() == 0
        rtol = int_session.artifact.integer_model().parity_rtol
        assert_within_rescale_bound(got, expected, rtol)


class TestPrunedFilters:
    """Where the arithmetic is exact, demand exactness: a 0-bit filter
    contributes no MACs — its output is the bias, bitwise, on both
    backends."""

    def test_pruned_output_channels_are_exactly_bias(self, tmp_path):
        from repro.quant.integer import capture_quantized_inputs

        model, manifest = build_random_bits_model(max_bits=4, bits_seed=2)
        # Prune two filters of the last quantized layer (the MLP head
        # itself stays float, so check at the pruned layer's output).
        final_name, final_layer = list(quantized_layers(model).items())[-1]
        bits = final_layer.bits.copy()
        bits[0] = 0
        bits[2] = 0
        final_layer.set_bits(bits)
        path, artifact = saved_and_reloaded(model, manifest, tmp_path)
        float_model = artifact.model()
        integer_model = artifact.integer_model()
        bias = np.asarray(quantized_layers(float_model)[final_name].bias.data)
        inputs = np.random.default_rng(8).standard_normal((5, 3, 8, 8))
        # The input the float engine actually feeds that layer.
        _, captured = capture_quantized_inputs(float_model, inputs)
        layer_input = captured[final_name]
        with no_grad():
            float_rows = quantized_layers(float_model)[final_name](
                Tensor(layer_input)
            ).data
        integer_rows = integer_forward(
            integer_model.specs[final_name].lease_copy(), layer_input
        )
        for channel in (0, 2):
            expected = np.full(len(layer_input), bias[channel])
            np.testing.assert_array_equal(integer_rows[:, channel], expected)
            np.testing.assert_array_equal(float_rows[:, channel], expected)

    def test_spec_level_pruned_filters_from_reloaded_artifact(self, tmp_path):
        model, manifest = build_random_bits_model(max_bits=8, bits_seed=11)
        path, artifact = saved_and_reloaded(model, manifest, tmp_path)
        integer_model = artifact.integer_model()
        rng = np.random.default_rng(1)
        pruned_seen = 0
        for name, spec in integer_model.specs.items():
            pruned = np.flatnonzero(np.asarray(spec.bits_per_filter) == 0)
            if pruned.size == 0:
                continue
            pruned_seen += pruned.size
            x = rng.standard_normal((4, spec.codes.shape[1]))
            out = integer_forward(spec.lease_copy(), x)
            bias = spec.bias[pruned]
            np.testing.assert_array_equal(
                out[:, pruned], np.broadcast_to(bias, (4, pruned.size))
            )
        assert pruned_seen > 0  # the fuzz seed actually exercised pruning


class TestPackingEdgeCases:
    """Spec-level fuzz over the packing format's corners, always through
    a serialize -> deserialize round trip of the export bytes."""

    @staticmethod
    def roundtrip_spec(model, layer_name):
        export = deserialize_export(
            serialize_export(export_quantized_weights(model))
        )
        layer = quantized_layers(model)[layer_name]
        return compile_integer_layer_from_export(
            layer, export.layers[layer_name], layer_name
        )

    @pytest.mark.parametrize("bits", [1, 3, 5, 7])
    def test_non_byte_aligned_packings(self, bits):
        """fan_in * bits not divisible by 8: the unpack must still
        reproduce the exact codes."""
        from repro.nn.module import Module
        from repro.quant.qmodules import QLinear

        class OneLayer(Module):
            def __init__(self):
                super().__init__()
                self.fc = QLinear(7, 3, max_bits=8, rng=np.random.default_rng(0))

            def forward(self, x):
                return self.fc(x)

        model = OneLayer()
        layer = quantized_layers(model)["fc"]
        layer.set_bits(np.full(3, bits, dtype=np.int64))
        model.eval()
        spec = self.roundtrip_spec(model, "fc")
        live = compile_integer_layer(layer, "fc")
        np.testing.assert_array_equal(spec.codes, live.codes)
        x = np.random.default_rng(3).standard_normal((6, 7))
        with no_grad():
            expected = layer(Tensor(x)).data
        np.testing.assert_allclose(
            integer_forward(spec, x), expected, rtol=1e-12, atol=1e-12
        )

    def test_single_filter_layer(self):
        from repro.nn.module import Module
        from repro.quant.qmodules import QLinear

        class OneFilter(Module):
            def __init__(self):
                super().__init__()
                self.fc = QLinear(5, 1, max_bits=8, rng=np.random.default_rng(4))

            def forward(self, x):
                return self.fc(x)

        model = OneFilter()
        layer = quantized_layers(model)["fc"]
        layer.set_bits(np.array([5], dtype=np.int64))
        model.eval()
        spec = self.roundtrip_spec(model, "fc")
        assert spec.num_filters == 1
        x = np.random.default_rng(6).standard_normal((4, 5))
        with no_grad():
            expected = layer(Tensor(x)).data
        np.testing.assert_allclose(
            integer_forward(spec, x), expected, rtol=1e-12, atol=1e-12
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_mixed_bit_artifacts_fuzz(self, tmp_path, seed):
        """Random 0..8-bit per-filter mixes, saved and reloaded: the
        integer model compiled from the disk bytes stays within the
        bound of the float model compiled from the same bytes."""
        act_bits = [None, 2, 4, 8][seed % 4]
        model, manifest = build_random_bits_model(
            max_bits=8, act_bits=act_bits, bits_seed=100 + seed
        )
        path, artifact = saved_and_reloaded(
            model, manifest, tmp_path, name=f"fuzz{seed}.cqw"
        )
        integer_model = compile_integer_serving(artifact)
        inputs = np.random.default_rng(seed).standard_normal((9, 3, 8, 8))
        difference = verify_integer_parity(
            integer_model, artifact.model(), inputs
        )
        assert difference >= 0.0


class TestParityVerifier:
    """verify_integer_parity failure reporting: name the offending
    layer and its max abs error (the serve twin of
    verify_export(strict=True))."""

    def test_corrupted_codes_name_the_offending_layer(self, tmp_path):
        model, manifest = build_random_bits_model(max_bits=4)
        _path, artifact = saved_and_reloaded(model, manifest, tmp_path)
        integer_model = artifact.clone_integer_model()
        # Sabotage one layer's codes: a huge code on an unpruned filter.
        victim = None
        for name, spec in integer_model.specs.items():
            live = np.flatnonzero(np.asarray(spec.bits_per_filter) > 0)
            if live.size:
                victim = name
                spec.codes = spec.codes.copy()
                spec.codes[live[0]] += 10_000
                break
        assert victim is not None
        integer_model._install()  # re-bind closures over the edited spec
        inputs = np.random.default_rng(0).standard_normal((4, 3, 8, 8))
        with pytest.raises(IntegerBackendParityError) as excinfo:
            verify_integer_parity(integer_model, artifact.model(), inputs)
        message = str(excinfo.value)
        assert victim in message
        assert "max abs error" in message

    def test_error_is_an_assertion_error(self, tmp_path):
        # The CLI maps AssertionError to "parity: FAILED"; the typed
        # error must stay in that hierarchy.
        assert issubclass(IntegerBackendParityError, AssertionError)

    def test_passing_verifier_returns_observed_difference(self, tmp_path):
        model, manifest = build_random_bits_model(max_bits=4, act_bits=2)
        _path, artifact = saved_and_reloaded(model, manifest, tmp_path)
        difference = verify_integer_parity(
            artifact.clone_integer_model(),
            artifact.model(),
            np.random.default_rng(1).standard_normal((6, 3, 8, 8)),
        )
        rtol = integer_parity_rtol(artifact.export)
        assert 0.0 <= difference <= rtol * 1e6  # sane magnitude


class TestIntegerClones:
    """Copy-on-lease semantics of the integer prototype."""

    def test_clones_share_codes_but_not_acc_stats(self, tmp_path):
        model, manifest = build_random_bits_model(max_bits=4, act_bits=4)
        _path, artifact = saved_and_reloaded(model, manifest, tmp_path)
        prototype = artifact.integer_model()
        clone = prototype.clone()
        for name, spec in prototype.specs.items():
            assert clone.specs[name].codes is spec.codes  # shared, immutable
        x = np.random.default_rng(0).standard_normal((4, 3, 8, 8))
        with no_grad():
            clone(Tensor(x))
        assert clone.max_acc_bits() > 0
        assert prototype.max_acc_bits() == 0  # stats are private

    def test_clone_outputs_bit_identical_to_prototype(self, tmp_path):
        model, manifest = build_random_bits_model(max_bits=4, act_bits=2)
        _path, artifact = saved_and_reloaded(model, manifest, tmp_path)
        prototype = artifact.integer_model()
        clone = prototype.clone()
        x = np.random.default_rng(7).standard_normal((5, 3, 8, 8))
        with no_grad():
            np.testing.assert_array_equal(
                clone(Tensor(x)).data, prototype(Tensor(x)).data
            )
