"""Tests for integer export, quantization metrics, report and trade-off sweep."""

import math

import numpy as np
import pytest

from repro.models.mlp import MLP
from repro.quant import quantize_model, quantized_layers
from repro.quant.export import (
    FLOAT32_BITS,
    export_quantized_weights,
    verify_export,
)
from repro.quant.metrics import (
    average_weight_bits,
    pruned_weight_fraction,
    quantized_weight_count,
    weight_quantization_mse,
    weight_sqnr_db,
)


def quantized_mlp(bits_fc1=None, bits_fc2=None, max_bits=4):
    model = MLP(10, (8, 6, 5), 3, rng=np.random.default_rng(0))
    quantize_model(model, max_bits=max_bits)
    layers = quantized_layers(model)
    if bits_fc1 is not None:
        layers["fc1"].set_bits(np.asarray(bits_fc1))
    if bits_fc2 is not None:
        layers["fc2"].set_bits(np.asarray(bits_fc2))
    return model, layers


class TestExport:
    def test_roundtrip_bit_exact(self):
        model, _ = quantized_mlp(bits_fc1=[0, 1, 2, 3, 4, 4], bits_fc2=[2] * 5)
        assert verify_export(model)

    def test_reconstruct_matches_effective_weight(self):
        model, layers = quantized_mlp(bits_fc1=[1, 2, 3, 4, 0, 2])
        export = export_quantized_weights(model)
        rebuilt = export.layers["fc1"].reconstruct()
        np.testing.assert_allclose(
            rebuilt, layers["fc1"].effective_weight().data, atol=1e-12
        )

    def test_pruned_filter_has_empty_codes(self):
        model, _ = quantized_mlp(bits_fc1=[0, 4, 4, 4, 4, 4])
        export = export_quantized_weights(model)
        assert len(export.layers["fc1"].codes[0]) == 0
        np.testing.assert_array_equal(
            export.layers["fc1"].reconstruct()[0], np.zeros(8)
        )

    def test_codes_within_level_range(self):
        model, _ = quantized_mlp(bits_fc1=[2] * 6)
        export = export_quantized_weights(model)
        for code in export.layers["fc1"].codes:
            assert np.all(code >= 0)
            assert np.all(code <= 3)  # 2 bits -> 4 levels

    def test_payload_bits_formula(self):
        model, _ = quantized_mlp(bits_fc1=[2] * 6)
        export = export_quantized_weights(model)
        # fc1: 6 filters x 8 inputs x 2 bits
        assert export.layers["fc1"].payload_bits == 6 * 8 * 2

    def test_metadata_bits(self):
        model, _ = quantized_mlp()
        export = export_quantized_weights(model)
        assert export.layers["fc1"].metadata_bits == 2 * 64 + 8 * 6

    def test_compression_ratio_improves_with_fewer_bits(self):
        model_high, _ = quantized_mlp(bits_fc1=[4] * 6, bits_fc2=[4] * 5)
        model_low, _ = quantized_mlp(bits_fc1=[1] * 6, bits_fc2=[1] * 5)
        high = export_quantized_weights(model_high).compression_ratio()
        low = export_quantized_weights(model_low).compression_ratio()
        assert low > high > 1.0

    def test_unquantized_layers_accounted(self):
        model, _ = quantized_mlp()
        export = export_quantized_weights(model)
        # fc0 (10->8) and the output fc3 (5->3) stay FP32, with biases.
        expected = FLOAT32_BITS * ((10 * 8 + 8) + (5 * 3 + 3))
        assert export.unquantized_weight_bits == expected

    def test_export_without_quantized_layers_raises(self):
        model = MLP(10, (8, 6), 3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            export_quantized_weights(model)

    def test_size_report_mentions_layers(self):
        model, _ = quantized_mlp()
        text = export_quantized_weights(model).size_report()
        assert "fc1" in text and "KiB" in text


class TestMetrics:
    def test_mse_zero_when_quant_disabled(self):
        model, layers = quantized_mlp()
        for layer in layers.values():
            layer.weight_quant_enabled = False
        assert all(v == 0.0 for v in weight_quantization_mse(model).values())

    def test_mse_positive_at_low_bits(self):
        model, _ = quantized_mlp(bits_fc1=[1] * 6)
        assert weight_quantization_mse(model)["fc1"] > 0

    def test_mse_decreases_with_bits(self):
        mse = []
        for bits in (1, 2, 4):
            model, _ = quantized_mlp(bits_fc1=[bits] * 6)
            mse.append(weight_quantization_mse(model)["fc1"])
        assert mse[0] > mse[1] > mse[2]

    def test_sqnr_increases_with_bits(self):
        values = []
        for bits in (1, 2, 4):
            model, _ = quantized_mlp(bits_fc1=[bits] * 6)
            values.append(weight_sqnr_db(model)["fc1"])
        assert values[0] < values[1] < values[2]

    def test_sqnr_infinite_for_lossless(self):
        model, layers = quantized_mlp()
        for layer in layers.values():
            layer.weight_quant_enabled = False
        assert all(v == math.inf for v in weight_sqnr_db(model).values())

    def test_average_weight_bits_matches_bitmap(self):
        model, _ = quantized_mlp(bits_fc1=[0, 1, 2, 3, 4, 4], bits_fc2=[2] * 5)
        from repro.quant.qmodules import extract_bit_map

        assert average_weight_bits(model) == pytest.approx(
            extract_bit_map(model).average_bits()
        )

    def test_quantized_weight_count(self):
        model, _ = quantized_mlp()
        assert quantized_weight_count(model) == 8 * 6 + 6 * 5

    def test_pruned_fraction(self):
        model, _ = quantized_mlp(bits_fc1=[0] * 6, bits_fc2=[4] * 5)
        expected = (8 * 6) / (8 * 6 + 6 * 5)
        assert pruned_weight_fraction(model) == pytest.approx(expected)

    def test_metrics_raise_without_quantized_layers(self):
        model = MLP(10, (8, 6), 3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            average_weight_bits(model)
        with pytest.raises(ValueError):
            pruned_weight_fraction(model)


class TestReport:
    def test_summarize_contains_key_metrics(self, tiny_dataset, trained_mlp):
        from repro.core import CQConfig, ClassBasedQuantizer
        from repro.core.report import summarize

        config = CQConfig(
            target_avg_bits=2.0, max_bits=4, step=0.5, act_bits=None,
            samples_per_class=4, refine_epochs=2, refine_batch_size=25,
        )
        result = ClassBasedQuantizer(config).quantize(trained_mlp, tiny_dataset)
        text = summarize(result)
        assert "accuracy" in text
        assert "average weight bits" in text
        assert "per-layer arrangement" in text
        assert "KiB" in text


class TestTradeoff:
    def test_sweep_monotone_bits(self, tiny_dataset, trained_mlp):
        from repro.analysis.tradeoff import render_curve, sweep_budgets
        from repro.core import CQConfig

        config = CQConfig(
            max_bits=4, act_bits=None, step=0.5, samples_per_class=4,
            refine_epochs=0, search_batch_size=40,
        )
        curve = sweep_budgets(
            trained_mlp, tiny_dataset, budgets=[1.0, 2.0, 3.0], config=config,
            refine=False,
        )
        assert len(curve.points) == 3
        bits = [point.avg_bits for point in curve.points]
        assert bits[0] <= 1.0 + 1e-9
        assert all(a <= b + 1e-9 for a, b in zip(bits, bits[1:]))
        text = render_curve(curve)
        assert "budget" in text

    def test_sweep_budget_satisfied(self, tiny_dataset, trained_mlp):
        from repro.analysis.tradeoff import sweep_budgets
        from repro.core import CQConfig

        config = CQConfig(
            max_bits=4, act_bits=None, step=0.5, samples_per_class=4,
            refine_epochs=0, search_batch_size=40,
        )
        curve = sweep_budgets(
            trained_mlp, tiny_dataset, budgets=[2.5], config=config, refine=False
        )
        assert curve.points[0].avg_bits <= 2.5 + 1e-9

    def test_curve_exports_design_points(self, tiny_dataset, trained_mlp):
        from repro.analysis.tradeoff import sweep_budgets
        from repro.core import CQConfig
        from repro.hw import pareto_front

        config = CQConfig(
            max_bits=4, act_bits=None, step=0.5, samples_per_class=4,
            refine_epochs=0, search_batch_size=40,
        )
        curve = sweep_budgets(
            trained_mlp, tiny_dataset, budgets=[1.0, 3.0], config=config, refine=False
        )
        points = curve.design_points()
        assert [p.label for p in points] == ["B=1", "B=3"]
        assert all(p.payload is point for p, point in zip(points, curve.points))
        # The frontier machinery accepts them directly.
        assert pareto_front(points)
