"""Tests for the APN, WrapNet and uniform baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    AnyPrecisionNet,
    CyclicActivation,
    SwitchableBatchNorm2d,
    WrapConv2d,
    WrapLinear,
    WrapNetConfig,
    build_wrapnet,
)
from repro.baselines.wrapnet import cyclic_map, overflow_penalty, wrap_to_signed
from repro.models.vgg import VGGSmall
from repro.nn import BatchNorm2d, Conv2d, Linear
from repro.quant.qmodules import quantized_layers
from repro.tensor import Tensor


class TestSwitchableBatchNorm:
    def test_branches_created_per_precision(self):
        bn = SwitchableBatchNorm2d(4, [2, 3, 4])
        assert bn.bit_widths == (2, 3, 4)
        assert bn.bn_2.num_features == 4

    def test_select_changes_active_branch(self, rng):
        bn = SwitchableBatchNorm2d(2, [2, 4])
        x = Tensor(rng.standard_normal((8, 2, 3, 3)) + 5)
        bn.select(2)
        bn(x)
        # only the 2-bit branch saw data
        assert bn.bn_2.num_batches_tracked[0] == 1
        assert bn.bn_4.num_batches_tracked[0] == 0

    def test_select_unknown_raises(self):
        with pytest.raises(KeyError):
            SwitchableBatchNorm2d(2, [2]).select(3)

    def test_empty_bit_widths_raise(self):
        with pytest.raises(ValueError):
            SwitchableBatchNorm2d(2, [])

    def test_duplicate_bits_deduplicated(self):
        bn = SwitchableBatchNorm2d(2, [4, 4, 2])
        assert bn.bit_widths == (2, 4)


class TestAnyPrecisionNet:
    @pytest.fixture(scope="class")
    def apn(self):
        model = VGGSmall(num_classes=4, image_size=8, width=4, rng=np.random.default_rng(0))
        return AnyPrecisionNet(model, bit_widths=[2, 4])

    def test_set_precision_updates_all_layers(self, apn):
        apn.set_precision(2)
        for layer in quantized_layers(apn.network).values():
            assert np.all(layer.bits == 2)
            assert layer.act_bits == 2

    def test_set_precision_switches_bns(self, apn):
        apn.set_precision(4)
        for module in apn.network.modules():
            if isinstance(module, SwitchableBatchNorm2d):
                assert module.active_bits == 4

    def test_unknown_precision_raises(self, apn):
        with pytest.raises(KeyError):
            apn.set_precision(7)

    def test_output_depends_on_precision(self, apn):
        rng = np.random.default_rng(1)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)))
        apn.eval()
        apn.set_precision(2)
        out2 = apn(x).data.copy()
        apn.set_precision(4)
        out4 = apn(x).data.copy()
        assert not np.allclose(out2, out4)

    def test_original_model_untouched(self):
        model = VGGSmall(num_classes=4, image_size=8, width=4, rng=np.random.default_rng(0))
        weight_before = model.conv1.weight.data.copy()
        AnyPrecisionNet(model, bit_widths=[2])
        np.testing.assert_array_equal(model.conv1.weight.data, weight_before)
        assert type(model.bn1) is BatchNorm2d


class TestWrapArithmetic:
    def test_wrap_identity_in_range(self):
        values = np.array([-8.0, 0.0, 7.0])
        np.testing.assert_array_equal(wrap_to_signed(values, 4), values)

    def test_wrap_overflow_wraps_around(self):
        assert wrap_to_signed(np.array([8.0]), 4)[0] == -8.0
        assert wrap_to_signed(np.array([-9.0]), 4)[0] == 7.0

    @given(st.integers(-10 ** 6, 10 ** 6), st.integers(3, 16))
    @settings(max_examples=100, deadline=None)
    def test_wrap_always_in_signed_range(self, value, bits):
        wrapped = wrap_to_signed(np.array([float(value)]), bits)[0]
        half = 2 ** (bits - 1)
        assert -half <= wrapped < half

    @given(st.integers(-10 ** 6, 10 ** 6), st.integers(3, 16))
    @settings(max_examples=100, deadline=None)
    def test_wrap_congruent_modulo(self, value, bits):
        wrapped = wrap_to_signed(np.array([float(value)]), bits)[0]
        assert (wrapped - value) % (2 ** bits) == 0

    def test_cyclic_identity_in_safe_zone(self):
        values = np.array([-2.0, 0.0, 2.0])
        mapped, gradient = cyclic_map(values, 4)  # half=8, safe=4
        np.testing.assert_array_equal(mapped, values)
        np.testing.assert_array_equal(gradient, [1.0, 1.0, 1.0])

    def test_cyclic_folds_beyond_safe_zone(self):
        mapped, gradient = cyclic_map(np.array([6.0]), 4)  # half=8
        assert mapped[0] == pytest.approx(2.0)  # 8 - 6
        assert gradient[0] == -1.0

    def test_cyclic_continuous_at_boundary(self):
        below, _ = cyclic_map(np.array([3.999]), 4)
        above, _ = cyclic_map(np.array([4.001]), 4)
        assert abs(below[0] - above[0]) < 0.01

    def test_cyclic_activation_module_backward(self):
        layer = CyclicActivation(4)
        x = Tensor(np.array([1.0, 6.0]), requires_grad=True)
        layer(x).sum().backward()
        np.testing.assert_array_equal(x.grad, [1.0, -1.0])

    def test_cyclic_activation_invalid_bits(self):
        with pytest.raises(ValueError):
            CyclicActivation(1)


class TestWrapLayers:
    def test_wrap_linear_high_acc_bits_close_to_quantized(self, rng):
        """With a huge accumulator nothing overflows, so the layer reduces
        to plain W/A fake quantization."""
        fc = Linear(6, 3, rng=rng)
        wrap = WrapLinear.from_float(fc, WrapNetConfig(weight_bits=4, act_bits=4, acc_bits=30))
        x = Tensor(np.abs(rng.standard_normal((4, 6))))
        wrap.train()
        wrap(x)
        wrap.eval()
        out = wrap(x)
        assert wrap.last_overflow_rate == 0.0
        assert out.shape == (4, 3)

    def test_wrap_conv_shape(self, rng):
        conv = Conv2d(2, 3, 3, padding=1, rng=rng)
        wrap = WrapConv2d.from_float(conv, WrapNetConfig(acc_bits=20))
        out = wrap(Tensor(np.abs(rng.standard_normal((1, 2, 6, 6)))))
        assert out.shape == (1, 3, 6, 6)

    def test_tiny_accumulator_overflows(self, rng):
        fc = Linear(50, 4, rng=rng)
        fc.weight.data[...] = np.abs(fc.weight.data) + 0.5
        wrap = WrapLinear.from_float(fc, WrapNetConfig(weight_bits=4, act_bits=4, acc_bits=4))
        x = Tensor(np.abs(rng.standard_normal((4, 50))) + 1.0)
        wrap(x)
        assert wrap.last_overflow_rate > 0.0

    def test_gradients_flow_through_wrap(self, rng):
        fc = Linear(6, 3, rng=rng)
        wrap = WrapLinear.from_float(fc, WrapNetConfig(acc_bits=16))
        x = Tensor(np.abs(rng.standard_normal((4, 6))))
        wrap(x).sum().backward()
        assert wrap.weight.grad is not None
        assert np.abs(wrap.weight.grad).sum() > 0

    def test_build_wrapnet_skips_first_and_last(self):
        model = VGGSmall(num_classes=4, image_size=8, width=4, rng=np.random.default_rng(0))
        network = build_wrapnet(model, WrapNetConfig())
        assert type(network.conv0) is Conv2d
        assert type(network.fc8) is Linear
        assert isinstance(network.conv1, WrapConv2d)
        assert isinstance(network.fc5, WrapLinear)

    def test_overflow_penalty_aggregates(self):
        model = VGGSmall(num_classes=4, image_size=8, width=4, rng=np.random.default_rng(0))
        network = build_wrapnet(model, WrapNetConfig(acc_bits=24))
        network(Tensor(np.random.default_rng(0).standard_normal((2, 3, 8, 8))))
        assert overflow_penalty(network) >= 0.0

    def test_overflow_penalty_empty_model(self):
        model = VGGSmall(num_classes=4, image_size=8, width=4, rng=np.random.default_rng(0))
        assert overflow_penalty(model) == 0.0
