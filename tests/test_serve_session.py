"""Tests for repro.serve.session: the synchronous serving facade."""

import time

import numpy as np
import pytest

from repro.serve import (
    ArtifactCache,
    AutoscalePolicy,
    EngineClosed,
    QueueFull,
    ServeConfig,
    ServingSession,
    compile_artifact,
    save_artifact,
)
from repro.tensor.tensor import Tensor, no_grad


@pytest.fixture
def artifact(quantized_mlp_factory):
    model, manifest = quantized_mlp_factory()
    return compile_artifact(model, manifest)


class TestConstruction:
    def test_from_artifact(self, artifact):
        with ServingSession(artifact) as session:
            assert session.artifact is artifact
            assert session.model is artifact.model()

    def test_from_path_leases_private_clones(self, quantized_mlp_factory, tmp_path):
        """Path-sourced sessions share the cached artifact (one parse,
        one build) but each engine serves a private clone — two
        sessions over one cached artifact can run concurrently."""
        model, manifest = quantized_mlp_factory()
        path = tmp_path / "model.cqw"
        save_artifact(path, model, manifest)
        cache = ArtifactCache()
        with ServingSession(path, cache=cache) as first:
            with ServingSession(str(path), cache=cache) as second:
                assert second.artifact is first.artifact
                assert second.model is not first.model
                for name, value in first.model.state_dict().items():
                    np.testing.assert_array_equal(
                        second.model.state_dict()[name], value
                    )
                assert cache.active_leases() == 2
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.active_leases() == 0  # released on close

    def test_from_bare_model(self, quantized_mlp_factory):
        model, _manifest = quantized_mlp_factory()
        with ServingSession(model) as session:
            assert session.artifact is None
            with pytest.raises(ValueError, match="example input"):
                session.warmup()

    def test_failed_construction_releases_leases(
        self, quantized_mlp_factory, tmp_path
    ):
        """A session that leases clones but fails before standing up its
        pool must return the claims — otherwise the cache entry stays
        pinned for the process lifetime."""
        model, manifest = quantized_mlp_factory()
        path = tmp_path / "model.cqw"
        save_artifact(path, model, manifest)
        cache = ArtifactCache()
        with pytest.raises(ValueError, match="batch_window_s"):
            ServingSession(
                path,
                config=ServeConfig(engines=2, batch_window_s=-1.0),
                cache=cache,
            )
        assert cache.stats.leases == 2
        assert cache.active_leases() == 0

    def test_multi_engine_path_source_reads_file_once(
        self, quantized_mlp_factory, tmp_path, monkeypatch
    ):
        model, manifest = quantized_mlp_factory()
        path = tmp_path / "model.cqw"
        save_artifact(path, model, manifest)
        from pathlib import Path as _Path

        reads = []
        real_read_bytes = _Path.read_bytes

        def counting_read_bytes(self):
            reads.append(str(self))
            return real_read_bytes(self)

        monkeypatch.setattr(_Path, "read_bytes", counting_read_bytes)
        cache = ArtifactCache()
        with ServingSession(
            path, config=ServeConfig(engines=3), cache=cache
        ) as session:
            assert len(session.engines) == 3
        assert reads.count(str(path)) == 1  # further engines adopt, no I/O

    def test_bare_model_cannot_fan_out(self, quantized_mlp_factory):
        model, _manifest = quantized_mlp_factory()
        with pytest.raises(ValueError, match="fan out"):
            ServingSession(model, config=ServeConfig(engines=2))

    def test_engines_validated(self, artifact):
        with pytest.raises(ValueError, match="engines"):
            ServingSession(artifact, config=ServeConfig(engines=0))

    def test_bad_source_rejected(self):
        with pytest.raises(TypeError, match="source"):
            ServingSession(42)


class TestMultiEngineSession:
    def test_artifact_source_clones_per_engine(self, artifact):
        with ServingSession(artifact, config=ServeConfig(engines=2)) as session:
            assert len(session.engines) == 2
            assert len(session.models) == 2
            assert session.models[0] is not session.models[1]
            # The prototype stays pristine (it is the clone source).
            assert artifact.model() not in session.models
            with pytest.raises(RuntimeError, match="use .engines"):
                session.engine

    def test_requests_fan_out_round_robin(self, artifact, rng):
        xs = rng.standard_normal((8, 3, 8, 8))
        config = ServeConfig(batch_window_s=0.0, engines=2)
        with ServingSession(artifact, config=config) as session:
            pendings = [session.submit(x) for x in xs]
            for pending in pendings:
                pending.result(timeout=10)
            assert [p.engine_index for p in pendings] == [0, 1] * 4
            per_engine = session.per_engine_stats()
            assert [stats.requests for stats in per_engine] == [4, 4]
            combined = session.stats
            assert combined.requests == 8
            assert combined.completed == 8

    def test_predict_batch_row_order_preserved_across_engines(self, artifact, rng):
        xs = rng.standard_normal((9, 3, 8, 8))
        config = ServeConfig(batch_window_s=0.01, max_batch_size=4, engines=2)
        with ServingSession(artifact, config=config) as session:
            got = session.predict_batch(xs)
        sequential_config = ServeConfig(batch_window_s=0.0, max_batch_size=1)
        with ServingSession(artifact, config=sequential_config) as session:
            sequential = session.predict_batch(xs)
        np.testing.assert_allclose(got, sequential, rtol=1e-9, atol=1e-12)

    def test_warmup_primes_every_engine(self, artifact):
        with ServingSession(artifact, config=ServeConfig(engines=2)) as session:
            session.warmup(count=2)
            assert [stats.completed for stats in session.per_engine_stats()] == [2, 2]


class TestPredict:
    def test_predict_matches_direct_forward(self, artifact, rng):
        x = rng.standard_normal((3, 8, 8))
        with ServingSession(artifact) as session:
            got = session.predict(x)
        with no_grad():
            expected = artifact.model()(Tensor(x[None])).data[0]
        np.testing.assert_array_equal(got, expected)

    def test_predict_batch_preserves_row_order(self, artifact, rng):
        xs = rng.standard_normal((9, 3, 8, 8))
        config = ServeConfig(batch_window_s=0.01, max_batch_size=4, record_batches=True)
        with ServingSession(artifact, config=config) as session:
            got = session.predict_batch(xs)
            stats = session.stats
        assert got.shape == (9, 4)
        assert stats.forwards < 9  # rows coalesced
        # Row i answers input i whatever the batching was: a strictly
        # sequential session must agree row by row (tiny float drift
        # across batch shapes is allowed; a row swap is not).
        sequential_config = ServeConfig(batch_window_s=0.0, max_batch_size=1)
        with ServingSession(artifact, config=sequential_config) as session:
            sequential = session.predict_batch(xs)
        np.testing.assert_allclose(got, sequential, rtol=1e-9, atol=1e-12)

    def test_predict_batch_rejects_single_example(self, artifact):
        with ServingSession(artifact) as session:
            with pytest.raises(ValueError, match="batch"):
                session.predict_batch(np.zeros((3 * 8 * 8,)))

    def test_predict_labels(self, artifact, rng):
        xs = rng.standard_normal((5, 3, 8, 8))
        with ServingSession(artifact) as session:
            labels = session.predict_labels(xs)
            logits = session.predict_batch(xs)
        np.testing.assert_array_equal(labels, logits.argmax(axis=1))

    def test_warmup_uses_manifest_shape(self, artifact):
        with ServingSession(artifact) as session:
            session.warmup(count=2)
            assert session.stats.completed == 2


class TestLifecycle:
    def test_close_is_graceful_and_idempotent(self, artifact):
        session = ServingSession(artifact)
        pending = session.submit(np.zeros((3, 8, 8)))
        session.close()
        assert pending.result(timeout=1).shape == (4,)
        session.close()
        with pytest.raises(EngineClosed):
            session.predict(np.zeros((3, 8, 8)))

    def test_drain_completes_inflight_work(self, artifact):
        config = ServeConfig(autostart=False, batch_window_s=0.0)
        session = ServingSession(artifact, config=config)
        pendings = [session.submit(np.zeros((3, 8, 8))) for _ in range(3)]
        session.start()
        session.drain(timeout=10)
        assert all(pending.done() for pending in pendings)
        session.close()

    def test_stats_property(self, artifact):
        with ServingSession(artifact) as session:
            session.predict(np.zeros((3, 8, 8)))
            stats = session.stats
        assert stats.requests == 1 and stats.completed == 1


class TestCloseIdempotency:
    """Repeated close() is a contractual no-op, any drain flag, any
    pool shape — a drained, closed session closing again must not
    raise (regression for the __exit__/manual-close combination)."""

    def test_drained_closed_session_closes_again(self, artifact):
        session = ServingSession(artifact)
        session.predict(np.zeros((3, 8, 8)))
        session.drain(timeout=10)
        session.close()
        session.close()
        session.close(drain=False)
        session.close(timeout=10)

    def test_manual_close_then_context_exit(self, artifact):
        with ServingSession(artifact) as session:
            session.predict(np.zeros((3, 8, 8)))
            session.close()
        # __exit__ ran close(drain=True) on the closed session: no raise.

    def test_exceptional_exit_after_manual_close(self, artifact):
        with pytest.raises(RuntimeError, match="sentinel"):
            with ServingSession(artifact) as session:
                session.close()
                raise RuntimeError("sentinel")
        # __exit__ ran close(drain=False) on the closed session: the
        # original exception propagated, not a close()-era one.

    def test_path_source_releases_leases_exactly_once(
        self, quantized_mlp_factory, tmp_path
    ):
        model, manifest = quantized_mlp_factory()
        path = tmp_path / "model.cqw"
        save_artifact(path, model, manifest)
        cache = ArtifactCache()
        session = ServingSession(path, config=ServeConfig(engines=2), cache=cache)
        session.close()
        assert cache.stats.releases == 2
        session.close()
        session.close(drain=False)
        assert cache.stats.releases == 2  # later closes never re-release

    def test_autoscaled_session_double_close(self, artifact):
        policy = AutoscalePolicy(min_engines=2, max_engines=3, interval_s=0.01)
        session = ServingSession(artifact, config=ServeConfig(autoscale=policy))
        session.predict(np.zeros((3, 8, 8)))
        session.close()
        session.close()

    def test_never_started_session_double_close(self, artifact):
        for drain in (True, False):
            session = ServingSession(artifact, config=ServeConfig(autostart=False))
            session.submit(np.zeros((3, 8, 8)))
            session.close(drain=drain)
            session.close(drain=drain)
            session.close(drain=not drain)


class TestSessionAdmission:
    def test_max_pending_flows_to_engines(self, artifact):
        config = ServeConfig(autostart=False, max_pending=1, engines=2)
        session = ServingSession(artifact, config=config)
        try:
            assert [e.max_pending for e in session.engines] == [1, 1]
            session.submit(np.zeros((3, 8, 8)))
            session.submit(np.zeros((3, 8, 8)))
            with pytest.raises(QueueFull, match="max_pending=1"):
                session.submit(np.zeros((3, 8, 8)))
            assert session.stats.rejected == 2  # both engines shed once
        finally:
            session.close(drain=False)

    def test_autoscaled_replacements_inherit_budget(self, artifact):
        policy = AutoscalePolicy(min_engines=1, max_engines=2, interval_s=0.01)
        config = ServeConfig(autoscale=policy, max_pending=7)
        session = ServingSession(artifact, config=config)
        try:
            session.pool.chaos_kill()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                engines = [e for e in session.engines if not e.worker_died]
                if engines and all(e.max_pending == 7 for e in engines):
                    break
                time.sleep(0.01)
            else:
                pytest.fail("no live replacement engine appeared")
            assert all(e.max_pending == 7 for e in engines)
        finally:
            session.close()
