"""Tests for repro.hw.energy: bit-scaled energy accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.energy import FP32_BITS, EnergyModel, EnergyParams
from repro.hw.profile import profile_model
from repro.models.vgg import VGGSmall
from repro.quant.bitmap import BitWidthMap
from repro.quant.qmodules import extract_bit_map, quantize_model


@pytest.fixture(scope="module")
def vgg_setup():
    model = VGGSmall(num_classes=4, image_size=8, width=8, rng=np.random.default_rng(0))
    profile = profile_model(model, (3, 8, 8))
    quantize_model(model, max_bits=4, act_bits=4)
    bit_map = extract_bit_map(model)
    return profile, bit_map


class TestEnergyParams:
    def test_reference_mult_energy(self):
        params = EnergyParams()
        assert params.mult_energy(8, 8) == pytest.approx(params.mult_8x8_pj)

    def test_mult_energy_quadratic_scaling(self):
        params = EnergyParams()
        assert params.mult_energy(4, 4) == pytest.approx(params.mult_8x8_pj / 4)
        assert params.mult_energy(2, 8) == pytest.approx(params.mult_8x8_pj / 4)

    def test_zero_bits_cost_nothing_to_multiply(self):
        assert EnergyParams().mult_energy(0, 8) == 0.0

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            EnergyParams().mult_energy(-1, 8)

    def test_add_energy_scales_with_accumulator(self):
        narrow = EnergyParams(accumulator_bits=16)
        wide = EnergyParams(accumulator_bits=32)
        assert narrow.add_energy() == pytest.approx(wide.add_energy() / 2)


class TestLayerEnergy:
    def test_pruned_filters_contribute_nothing(self, vgg_setup):
        profile, bit_map = vgg_setup
        name = bit_map.layers()[0]
        layer = profile[name]
        model = EnergyModel()

        full = model.layer_energy(layer, np.full(layer.num_filters, 4), act_bits=4)
        half_bits = np.full(layer.num_filters, 4)
        half_bits[: layer.num_filters // 2] = 0
        half = model.layer_energy(layer, half_bits, act_bits=4)

        surviving = layer.num_filters - layer.num_filters // 2
        assert half.active_macs == surviving * layer.macs_per_filter
        assert half.compute_pj == pytest.approx(
            full.compute_pj * surviving / layer.num_filters
        )
        assert half.sram_pj < full.sram_pj

    def test_scalar_bits_broadcast(self, vgg_setup):
        profile, bit_map = vgg_setup
        name = bit_map.layers()[0]
        layer = profile[name]
        model = EnergyModel()
        scalar = model.layer_energy(layer, 3, act_bits=4)
        array = model.layer_energy(layer, np.full(layer.num_filters, 3), act_bits=4)
        assert scalar.total_pj == pytest.approx(array.total_pj)

    def test_wrong_filter_count_rejected(self, vgg_setup):
        profile, bit_map = vgg_setup
        layer = profile[bit_map.layers()[0]]
        with pytest.raises(ValueError, match="per-filter bit-widths"):
            EnergyModel().layer_energy(layer, np.ones(layer.num_filters + 1), act_bits=4)

    def test_negative_act_bits_rejected(self, vgg_setup):
        profile, bit_map = vgg_setup
        layer = profile[bit_map.layers()[0]]
        with pytest.raises(ValueError):
            EnergyModel().layer_energy(layer, 4, act_bits=-1)

    @given(bits=st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_energy_monotone_in_weight_bits(self, vgg_setup, bits):
        profile, bit_map = vgg_setup
        layer = profile[bit_map.layers()[0]]
        model = EnergyModel()
        lower = model.layer_energy(layer, bits, act_bits=4)
        higher = model.layer_energy(layer, bits + 1, act_bits=4)
        assert higher.total_pj > lower.total_pj


class TestModelEnergy:
    def test_quantized_beats_fp32(self, vgg_setup):
        profile, bit_map = vgg_setup
        model = EnergyModel()
        quantized = model.model_energy(profile, bit_map, act_bits=4, unmapped="skip")
        fp = model.fp32_energy(profile.subset(bit_map.layers()))
        assert quantized.total_pj < fp.total_pj

    def test_unmapped_fp32_includes_first_and_last(self, vgg_setup):
        profile, bit_map = vgg_setup
        model = EnergyModel()
        with_ends = model.model_energy(profile, bit_map, act_bits=4, unmapped="fp32")
        without = model.model_energy(profile, bit_map, act_bits=4, unmapped="skip")
        assert len(with_ends) == len(profile)
        assert len(without) == len(bit_map.layers())
        assert with_ends.total_pj > without.total_pj

    def test_invalid_unmapped_mode(self, vgg_setup):
        profile, bit_map = vgg_setup
        with pytest.raises(ValueError, match="unmapped"):
            EnergyModel().model_energy(profile, bit_map, act_bits=4, unmapped="zero")

    def test_report_totals_sum_layers(self, vgg_setup):
        profile, bit_map = vgg_setup
        report = EnergyModel().model_energy(profile, bit_map, act_bits=4, unmapped="skip")
        assert report.total_pj == pytest.approx(
            sum(report[name].total_pj for name in report)
        )
        assert report.total_pj == pytest.approx(report.compute_pj + report.memory_pj)

    def test_skewed_arrangement_cheaper_than_uniform_same_average(self, vgg_setup):
        """A CQ-like arrangement (prune some, boost others) saves energy vs
        uniform at the same *average* bits because compute scales
        super-linearly in bits while pruning removes MACs entirely."""
        profile, bit_map = vgg_setup
        model = EnergyModel()
        name = bit_map.layers()[0]
        layer = profile[name]
        n = layer.num_filters
        assert n % 2 == 0
        uniform = np.full(n, 2)
        skewed = np.zeros(n, dtype=int)
        skewed[: n // 2] = 4  # same average of 2 bits
        assert uniform.mean() == skewed.mean()
        e_uniform = model.layer_energy(layer, uniform, act_bits=2)
        e_skewed = model.layer_energy(layer, skewed, act_bits=2)
        # mult energy: uniform n*(2*2)=4n vs skewed (n/2)*(4*4)=8n — but
        # skewed halves the adds, SRAM act reads and MAC count; the memory
        # side dominates at these widths.
        assert e_skewed.sram_pj < e_uniform.sram_pj
        assert e_skewed.active_macs == e_uniform.active_macs // 2
