"""Tests for checkpoint persistence of quantization state.

A saved quantized model must restore with its bit arrangement AND its
calibrated activation ranges intact — otherwise a deployed checkpoint
silently runs uncalibrated.
"""

import numpy as np
import pytest

from repro.models.mlp import MLP
from repro.quant import quantize_model, quantized_layers
from repro.tensor import Tensor
from repro.utils import load_checkpoint, save_checkpoint


def make_quantized(seed=0, act_bits=2):
    model = MLP(12, (10, 8, 6), 4, rng=np.random.default_rng(seed))
    quantize_model(model, max_bits=4, act_bits=act_bits)
    return model


class TestBitPersistence:
    def test_bits_survive_state_dict_roundtrip(self):
        model = make_quantized()
        layers = quantized_layers(model)
        layers["fc1"].set_bits(np.array([0, 1, 2, 3, 4, 4, 2, 1]))
        state = model.state_dict()

        other = make_quantized(seed=1)
        other.load_state_dict(state)
        np.testing.assert_array_equal(
            quantized_layers(other)["fc1"].bits,
            np.array([0, 1, 2, 3, 4, 4, 2, 1]),
        )

    def test_bits_survive_npz_checkpoint(self, tmp_path):
        model = make_quantized()
        layers = quantized_layers(model)
        layers["fc2"].set_bits(np.array([1, 1, 2, 2, 4, 0]))
        path = tmp_path / "quantized.npz"
        save_checkpoint(model, path)

        other = make_quantized(seed=2)
        load_checkpoint(other, path)
        np.testing.assert_array_equal(
            quantized_layers(other)["fc2"].bits,
            np.array([1, 1, 2, 2, 4, 0]),
        )

    def test_state_dict_contains_quant_buffers(self):
        state = make_quantized().state_dict()
        assert "fc1.quant_bits" in state
        assert "fc1.act_range" in state

    def test_bits_property_reflects_buffer(self):
        model = make_quantized()
        layer = quantized_layers(model)["fc1"]
        layer.set_bits(np.full(8, 3))
        assert layer.bits.dtype == np.int64
        np.testing.assert_array_equal(layer.bits, np.full(8, 3))


class TestActivationRangePersistence:
    def test_calibration_survives_checkpoint(self, tmp_path):
        rng = np.random.default_rng(0)
        model = make_quantized()
        # Calibrate by running a training-mode forward.
        model.train()
        model(Tensor(np.abs(rng.standard_normal((20, 12)))))
        layer = quantized_layers(model)["fc1"]
        assert layer.act_observer.initialized
        calibrated_max = layer.act_observer.max_value

        path = tmp_path / "calibrated.npz"
        save_checkpoint(model, path)

        other = make_quantized(seed=3)
        load_checkpoint(other, path)
        other.eval()
        # Forward in eval: the restored range must be used (no RuntimeError,
        # and the observer reports the checkpointed max).
        other(Tensor(np.abs(rng.standard_normal((4, 12)))))
        restored = quantized_layers(other)["fc1"].act_observer
        assert restored.max_value == pytest.approx(calibrated_max)

    def test_eval_outputs_identical_after_restore(self, tmp_path):
        rng = np.random.default_rng(1)
        model = make_quantized()
        model.train()
        calibration = Tensor(np.abs(rng.standard_normal((30, 12))))
        model(calibration)
        model.eval()
        x = Tensor(np.abs(rng.standard_normal((5, 12))))
        expected = model(x).data.copy()

        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        other = make_quantized(seed=4)
        load_checkpoint(other, path)
        other.eval()
        np.testing.assert_allclose(other(x).data, expected, atol=1e-12)

    def test_live_observer_beats_stale_buffer(self):
        """A fresher live observer must not be clobbered by an older
        buffered range."""
        model = make_quantized()
        layer = quantized_layers(model)["fc1"]
        model.train()
        rng = np.random.default_rng(2)
        model(Tensor(np.abs(rng.standard_normal((10, 12)))))
        batches_after_one = layer.act_observer.num_batches
        model(Tensor(np.abs(rng.standard_normal((10, 12)))))
        assert layer.act_observer.num_batches > batches_after_one
        # Buffer stays in sync with the live observer.
        assert int(layer.act_range[2]) == layer.act_observer.num_batches
