"""Tests for the Trainer's divergence rollback and optimizer state reset."""

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset, DataLoader
from repro.models.mlp import MLP
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, MultiStepLR
from repro.train.trainer import Trainer


def make_loader(dataset, batch_size=25):
    return DataLoader(
        ArrayDataset(dataset.train_images, dataset.train_labels),
        batch_size=batch_size,
        shuffle=True,
        seed=0,
    )


def fresh_mlp(dataset, seed=0):
    return MLP(
        in_features=3 * 8 * 8,
        hidden=(16, 12),
        num_classes=dataset.num_classes,
        rng=np.random.default_rng(seed),
    )


class TestOptimizerReset:
    def test_sgd_velocity_cleared(self):
        param = Parameter(np.ones(3))
        optimizer = SGD([param], lr=0.1, momentum=0.9)
        param.grad = np.ones(3)
        optimizer.step()
        assert optimizer._velocity[0] is not None
        optimizer.reset_state()
        assert optimizer._velocity[0] is None

    def test_adam_moments_cleared(self):
        param = Parameter(np.ones(3))
        optimizer = Adam([param], lr=0.1)
        param.grad = np.ones(3)
        optimizer.step()
        assert optimizer._t == 1
        optimizer.reset_state()
        assert optimizer._t == 0
        assert optimizer._m[0] is None


class TestDivergenceRollback:
    def test_healthy_training_never_rolls_back(self, tiny_dataset):
        model = fresh_mlp(tiny_dataset)
        trainer = Trainer(
            model,
            SGD(model.parameters(), lr=0.05, momentum=0.9),
            divergence_rollback=True,
        )
        history = trainer.fit(make_loader(tiny_dataset), epochs=6)
        assert trainer.rollbacks == 0
        assert history.train[-1].loss < history.train[0].loss

    def test_absurd_lr_triggers_rollback_and_backoff(self, tiny_dataset):
        model = fresh_mlp(tiny_dataset)
        optimizer = SGD(model.parameters(), lr=500.0, momentum=0.9)
        trainer = Trainer(model, optimizer, divergence_rollback=True)
        trainer.fit(make_loader(tiny_dataset), epochs=6)
        assert trainer.rollbacks > 0
        assert optimizer.lr < 500.0

    def test_rollback_restores_parameters(self, tiny_dataset):
        model = fresh_mlp(tiny_dataset)
        initial = {k: v.copy() for k, v in model.state_dict().items()}
        optimizer = SGD(model.parameters(), lr=1e6)
        trainer = Trainer(model, optimizer, divergence_rollback=True)
        trainer.fit(make_loader(tiny_dataset), epochs=1)
        if trainer.rollbacks:
            # After a first-epoch rollback the weights are the initials.
            for key, value in model.state_dict().items():
                np.testing.assert_array_equal(value, initial[key])

    def test_backoff_propagates_through_scheduler(self, tiny_dataset):
        model = fresh_mlp(tiny_dataset)
        optimizer = SGD(model.parameters(), lr=500.0, momentum=0.9)
        scheduler = MultiStepLR(optimizer, milestones=[100], gamma=0.1)
        trainer = Trainer(
            model, optimizer, scheduler=scheduler, divergence_rollback=True
        )
        trainer.fit(make_loader(tiny_dataset), epochs=3)
        assert trainer.rollbacks > 0
        # The scheduler's base LR carries the backoff, so its next step
        # cannot restore the diverging LR.
        assert scheduler.base_lr < 500.0

    def test_rollback_cap_respected(self, tiny_dataset):
        model = fresh_mlp(tiny_dataset)
        optimizer = SGD(model.parameters(), lr=1e12)
        trainer = Trainer(model, optimizer, divergence_rollback=True)
        trainer.fit(make_loader(tiny_dataset), epochs=Trainer.MAX_ROLLBACKS + 3)
        assert trainer.rollbacks <= Trainer.MAX_ROLLBACKS

    def test_training_loss_matches_eval_semantics(self, trained_mlp, tiny_dataset):
        trainer = Trainer(trained_mlp, SGD(trained_mlp.parameters(), lr=0.01))
        loader = DataLoader(
            ArrayDataset(tiny_dataset.train_images, tiny_dataset.train_labels),
            batch_size=25,
        )
        loss = trainer.training_loss(loader)
        assert np.isfinite(loss)
        # No weights were touched.
        again = trainer.training_loss(loader)
        assert loss == pytest.approx(again)
