"""Tests for the sweep runner: registry, caching, resume, parallelism.

The correctness properties under test (content-hash cache-resume,
jobs-count invariance, deterministic ordering) are independent of what
a unit computes, so these tests drive the runner through the cheap
units in :mod:`repro.runner.testing` — pool workers must import the
target, hence toy units live in the package, not here.
"""

import json

import pytest

from repro.runner import (
    SweepRunner,
    UnitSpec,
    available_unit_factories,
    budget_sweep_units,
    build_units,
    execute_unit,
    figure_unit,
    figure_units,
    resolve_target,
)
from repro.runner.testing import toy_units


def _executions(marker_path):
    if not marker_path.exists():
        return []
    return marker_path.read_text().splitlines()


class TestUnitSpec:
    def test_content_key_is_stable_and_order_independent(self):
        a = UnitSpec("u", "m:f", {"x": 1, "y": 2.0})
        b = UnitSpec("u", "m:f", {"y": 2.0, "x": 1})
        assert a.content_key() == b.content_key()
        assert len(a.content_key()) == 16

    def test_content_key_changes_with_config(self):
        base = UnitSpec("u", "m:f", {"x": 1})
        assert base.content_key() != UnitSpec("u", "m:f", {"x": 2}).content_key()
        assert base.content_key() != UnitSpec("v", "m:f", {"x": 1}).content_key()
        assert base.content_key() != UnitSpec("u", "m:g", {"x": 1}).content_key()

    def test_non_jsonable_params_rejected_before_scheduling(self):
        spec = UnitSpec("u", "m:f", {"x": object()})
        with pytest.raises(TypeError):
            spec.content_key()

    def test_resolve_target(self):
        fn = resolve_target("repro.runner.testing:toy_unit")
        assert fn(3.0, seed=1)["scaled"] == 6.0

    def test_resolve_target_rejects_bad_spelling(self):
        with pytest.raises(ValueError):
            resolve_target("repro.runner.testing.toy_unit")  # missing colon
        with pytest.raises(AttributeError):
            resolve_target("repro.runner.testing:nope")


class TestRegistry:
    def test_families_registered(self):
        families = available_unit_factories()
        assert "figures" in families
        assert "budget-sweep" in families
        assert "toy" in families  # from repro.runner.testing import above

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            build_units("frobnicate")

    def test_figure_units_cover_every_figure(self):
        specs = figure_units(scale="tiny", seed=3)
        assert [s.name for s in specs] == [
            "figure-2",
            "figure-3",
            "figure-4",
            "figure-5",
            "figure-6",
            "figure-7",
            "figure-ablations",
            "figure-granularity",
        ]
        for spec in specs:
            assert spec.params == {"scale": "tiny", "seed": 3}
            assert spec.render.endswith(":render")
            # The targets must actually resolve (figures move around).
            resolve_target(spec.target)
            resolve_target(spec.render)

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            figure_unit("9")

    def test_serve_replay_units_registered_and_resolvable(self):
        assert "serve-replay" in available_unit_factories()
        specs = build_units(
            "serve-replay", model="mlp", bits=(1, 2), seeds=(0, 1), scale="tiny"
        )
        grid = [(s.params["bits"], s.params["seed"]) for s in specs]
        assert grid == [(1, 0), (1, 1), (2, 0), (2, 1)]
        for spec in specs:
            assert spec.target == "repro.serve.replay:run_point"
            assert spec.params["pool_size"] == 1
            resolve_target(spec.target)
            resolve_target(spec.render)
            spec.content_key()  # params must be JSON-able
        assert len({s.content_key() for s in specs}) == len(specs)

    def test_serve_replay_pool_size_is_a_grid_knob(self):
        specs = build_units("serve-replay", model="mlp", pool_size=3)
        assert all(s.params["pool_size"] == 3 for s in specs)
        assert all(s.name.endswith("-p3") for s in specs)
        # Different pool sizes are different cached results.
        baseline = build_units("serve-replay", model="mlp")
        assert {s.content_key() for s in specs}.isdisjoint(
            s.content_key() for s in baseline
        )

    def test_budget_sweep_units_grid_order(self):
        specs = budget_sweep_units(
            model="mlp", budgets=(1.0, 2.0), seeds=(0, 1), scale="tiny"
        )
        grid = [(s.params["budget"], s.params["seed"]) for s in specs]
        assert grid == [(1.0, 0), (1.0, 1), (2.0, 0), (2.0, 1)]
        assert all(
            s.target == "repro.experiments.budget_sweep:run_point" for s in specs
        )
        # Distinct grid points must have distinct cache identities.
        assert len({s.content_key() for s in specs}) == len(specs)


class TestExecuteUnit:
    def test_executes_and_renders(self):
        spec = toy_units([2.0], seeds=[1])[0]
        payload = execute_unit(spec)
        assert payload["result"]["scaled"] == 4.0
        assert payload["rendered"] == "toy value=2 scaled=4"

    def test_accepts_spec_as_dict(self):
        spec = toy_units([2.0], seeds=[1])[0]
        assert execute_unit(dict(spec.__dict__)) == execute_unit(spec)

    def test_per_unit_seeding_is_reproducible(self):
        spec = toy_units([3.0])[0]
        assert execute_unit(spec)["result"]["noise"] == execute_unit(spec)["result"]["noise"]

    def test_different_units_get_different_streams(self):
        a, b = toy_units([3.0, 4.0])
        assert execute_unit(a)["result"]["noise"] != execute_unit(b)["result"]["noise"]


class TestSweepRunnerCache:
    def test_first_run_computes_second_run_hits(self, tmp_path):
        marker = tmp_path / "marker.txt"
        specs = toy_units([1.0, 2.0, 3.0], marker_path=str(marker))
        runner = SweepRunner(cache_dir=tmp_path / "cache", jobs=1)

        first = runner.run(specs)
        assert (first.hits, first.misses) == (0, 3)
        assert len(_executions(marker)) == 3

        second = runner.run(specs)
        assert (second.hits, second.misses) == (3, 0)
        assert len(_executions(marker)) == 3  # nothing re-ran
        assert second.results == first.results

    def test_killed_sweep_resumes_only_missing_points(self, tmp_path):
        """The core resume contract: after a partial run, a restart over
        the full grid re-runs only the grid points with no archived
        result."""
        marker = tmp_path / "marker.txt"
        runner = SweepRunner(cache_dir=tmp_path / "cache", jobs=1)

        partial = toy_units([1.0, 2.0], marker_path=str(marker))
        runner.run(partial)
        assert len(_executions(marker)) == 2

        full = toy_units([1.0, 2.0, 3.0, 4.0], marker_path=str(marker))
        report = runner.run(full)
        assert (report.hits, report.misses) == (2, 2)
        executed = _executions(marker)
        assert len(executed) == 4
        assert executed[2:] == ["3.0:0", "4.0:0"]  # only the new points ran

    def test_config_change_is_a_cache_miss(self, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path / "cache", jobs=1)
        runner.run(toy_units([1.0], seeds=[0]))
        report = runner.run(toy_units([1.0], seeds=[1]))
        assert (report.hits, report.misses) == (0, 1)

    def test_truncated_cache_file_treated_as_miss(self, tmp_path):
        """A sweep killed mid-write must not poison the resume."""
        runner = SweepRunner(cache_dir=tmp_path / "cache", jobs=1)
        (spec,) = toy_units([1.0])
        runner.run([spec])
        path = runner.result_path(spec)
        path.write_text(path.read_text()[: 40])  # simulate truncation
        report = runner.run([spec])
        assert (report.hits, report.misses) == (0, 1)
        # The re-run repaired the archive.
        assert json.loads(path.read_text())["payload"]["result"]["value"] == 1.0

    def test_archive_is_self_describing_strict_json(self, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path / "cache", jobs=1)
        (spec,) = toy_units([2.5], seeds=[1])
        runner.run([spec])

        def _reject(token):
            raise AssertionError(f"non-standard JSON token {token!r}")

        document = json.loads(
            runner.result_path(spec).read_text(), parse_constant=_reject
        )
        assert document["unit"] == spec.name
        assert document["target"] == spec.target
        assert document["params"]["value"] == 2.5
        assert document["key"] == spec.content_key()

    def test_unit_failure_propagates(self, tmp_path):
        spec = UnitSpec(
            name="toy-fail",
            target="repro.runner.testing:toy_unit",
            params={"value": 1.0, "fail": True},
        )
        runner = SweepRunner(cache_dir=tmp_path / "cache", jobs=1)
        with pytest.raises(RuntimeError):
            runner.run([spec])
        # Nothing was archived for the failed unit.
        assert not runner.result_path(spec).exists()

    def test_units_completed_before_a_failure_stay_archived(self, tmp_path):
        """Results are archived as each unit completes, so work done
        before a crash (or kill) survives for the resume."""
        good = toy_units([1.0, 2.0])
        bad = UnitSpec(
            name="toy-fail",
            target="repro.runner.testing:toy_unit",
            params={"value": 9.0, "fail": True},
        )
        runner = SweepRunner(cache_dir=tmp_path / "cache", jobs=1)
        with pytest.raises(RuntimeError):
            runner.run(good + [bad])
        for spec in good:
            assert runner.result_path(spec).exists()
        # The restarted sweep (minus the bad unit) is all hits.
        report = runner.run(good)
        assert (report.hits, report.misses) == (2, 0)


class TestSweepRunnerParallel:
    def test_pool_matches_inline_byte_for_byte(self, tmp_path):
        """Acceptance criterion: --jobs 2 writes byte-identical result
        JSON to --jobs 1 on the same grid."""
        specs = toy_units([1.0, 2.0, 3.0, 4.0], seeds=[0, 1])
        inline = SweepRunner(cache_dir=tmp_path / "inline", jobs=1)
        pooled = SweepRunner(cache_dir=tmp_path / "pooled", jobs=2)
        report_inline = inline.run(specs)
        report_pooled = pooled.run(specs)
        assert report_inline.results == report_pooled.results
        for spec in specs:
            assert (
                inline.result_path(spec).read_bytes()
                == pooled.result_path(spec).read_bytes()
            )

    def test_pool_outcomes_in_spec_order(self, tmp_path):
        specs = toy_units([5.0, 1.0, 3.0])
        report = SweepRunner(cache_dir=tmp_path / "cache", jobs=2).run(specs)
        assert [o.spec.name for o in report.outcomes] == [s.name for s in specs]
        assert [o.result["value"] for o in report.outcomes] == [5.0, 1.0, 3.0]

    def test_pool_resume_mixes_hits_and_misses(self, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path / "cache", jobs=2)
        runner.run(toy_units([1.0, 2.0]))
        report = runner.run(toy_units([1.0, 2.0, 3.0, 4.0]))
        assert (report.hits, report.misses) == (2, 2)
        assert [o.cached for o in report.outcomes] == [True, True, False, False]


class TestBudgetSweepHarness:
    def test_point_from_payload_roundtrip(self):
        from repro.experiments.budget_sweep import BudgetPoint, point_from_payload
        from repro.experiments.io import _jsonable

        point = BudgetPoint(
            model="mlp",
            dataset="synth10",
            scale="tiny",
            budget=2.0,
            seed=0,
            fp_accuracy=0.9,
            accuracy=0.8,
            avg_bits=1.9,
            storage_kib=1.5,
            energy_uj=0.2,
            latency_us=0.1,
        )
        assert point_from_payload(_jsonable(point)) == point

    def test_design_points_skip_archived_nonfinite(self):
        from repro.experiments.budget_sweep import BudgetPoint, design_points

        good = BudgetPoint("m", "d", "tiny", 2.0, 0, 0.9, 0.8, 1.9, 1.5, 0.2, 0.1)
        bad = BudgetPoint("m", "d", "tiny", 3.0, 0, 0.9, None, 1.9, 1.5, 0.2, 0.1)
        points = design_points([good, bad], cost="storage_kib")
        assert len(points) == 1
        assert points[0].accuracy == 0.8
        assert points[0].label == "B=2 seed=0"

    def test_render_empty_sweep(self):
        from repro.experiments.budget_sweep import BudgetSweepResult, render

        text = render(BudgetSweepResult(points=[]))
        assert "no points" in text


class TestFrontierReport:
    def test_report_lists_frontier_and_knee(self):
        from repro.hw.pareto import DesignPoint
        from repro.hw.report import frontier_report

        points = [
            DesignPoint(accuracy=0.5, cost=1.0, label="a"),
            DesignPoint(accuracy=0.9, cost=2.0, label="b"),
            DesignPoint(accuracy=0.91, cost=8.0, label="c"),
            DesignPoint(accuracy=0.4, cost=5.0, label="worst"),
        ]
        text = frontier_report(points, cost_label="storage (KiB)")
        assert "worst" not in text  # dominated point not listed
        assert "<-- knee" in text
        assert "frontier: 3/4 points non-dominated" in text
        assert "knee: b" in text

    def test_report_empty(self):
        from repro.hw.report import frontier_report

        assert "no design points" in frontier_report([])
