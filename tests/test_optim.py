"""Tests for optimisers (exact update rules) and LR schedulers."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import SGD, Adam, CosineAnnealingLR, MultiStepLR, StepLR


def make_param(value=1.0, grad=0.5):
    param = Parameter(np.array([value]))
    param.grad = np.array([grad])
    return param


class TestSGD:
    def test_plain_update(self):
        param = make_param(1.0, 0.5)
        SGD([param], lr=0.1).step()
        assert param.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_weight_decay_adds_to_gradient(self):
        param = make_param(2.0, 0.0)
        SGD([param], lr=0.1, weight_decay=0.1).step()
        assert param.data[0] == pytest.approx(2.0 - 0.1 * (0.1 * 2.0))

    def test_momentum_accumulates(self):
        param = make_param(0.0, 1.0)
        opt = SGD([param], lr=1.0, momentum=0.9)
        opt.step()  # v=1, x=-1
        param.grad = np.array([1.0])
        opt.step()  # v=1.9, x=-2.9
        assert param.data[0] == pytest.approx(-2.9)

    def test_momentum_matches_torch_semantics(self):
        """v = mu*v + g; x -= lr*v (PyTorch convention, lr outside v)."""
        param = make_param(0.0, 1.0)
        opt = SGD([param], lr=0.1, momentum=0.5)
        for _ in range(3):
            param.grad = np.array([1.0])
            opt.step()
        # v1=1, v2=1.5, v3=1.75 -> x = -0.1*(1+1.5+1.75)
        assert param.data[0] == pytest.approx(-0.425)

    def test_nesterov_lookahead(self):
        param = make_param(0.0, 1.0)
        opt = SGD([param], lr=1.0, momentum=0.9, nesterov=True)
        opt.step()
        # v=1; update = g + mu*v = 1.9
        assert param.data[0] == pytest.approx(-1.9)

    def test_nesterov_without_momentum_raises(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.1, nesterov=True)

    def test_skips_params_without_grad(self):
        param = Parameter(np.array([1.0]))
        SGD([param], lr=0.1).step()
        assert param.data[0] == 1.0

    def test_zero_grad(self):
        param = make_param()
        opt = SGD([param], lr=0.1)
        opt.zero_grad()
        assert param.grad is None

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.0)

    def test_negative_momentum_raises(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.1, momentum=-0.5)


class TestAdam:
    def test_first_step_magnitude_is_lr(self):
        param = make_param(0.0, 100.0)
        Adam([param], lr=0.001).step()
        # bias-corrected first step has magnitude ~lr regardless of grad scale
        assert abs(param.data[0]) == pytest.approx(0.001, rel=1e-3)

    def test_converges_on_quadratic(self):
        param = Parameter(np.array([5.0]))
        opt = Adam([param], lr=0.2)
        for _ in range(200):
            param.grad = 2 * param.data  # d/dx x^2
            opt.step()
        assert abs(param.data[0]) < 0.05

    def test_weight_decay_applied(self):
        p_decay = make_param(1.0, 0.0)
        Adam([p_decay], lr=0.01, weight_decay=0.5).step()
        assert p_decay.data[0] < 1.0


class TestSchedulers:
    def test_multistep_drops_at_milestones(self):
        param = make_param()
        opt = SGD([param], lr=1.0)
        sched = MultiStepLR(opt, milestones=[2, 4], gamma=0.1)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01, 0.01])

    def test_step_lr(self):
        opt = SGD([make_param()], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 0.5, 0.5, 0.25])

    def test_step_lr_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(SGD([make_param()], lr=1.0), step_size=0)

    def test_cosine_endpoints(self):
        opt = SGD([make_param()], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        assert sched.get_lr() == pytest.approx(1.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)

    def test_cosine_midpoint_half(self):
        opt = SGD([make_param()], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.5)

    def test_cosine_invalid_tmax(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(SGD([make_param()], lr=1.0), t_max=0)

    def test_current_lr_property(self):
        opt = SGD([make_param()], lr=0.3)
        sched = MultiStepLR(opt, milestones=[1])
        assert sched.current_lr == 0.3
