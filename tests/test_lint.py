"""The ``repro.analysis`` invariant linter (reprolint).

Three layers of coverage:

* **Per-rule fixtures** — every shipped rule fires on a positive
  snippet, honors an inline ``# repro: allow(...)`` pragma, and skips
  paths its per-directory config (or whitelist) excludes.
* **Regression fixtures** — the three real bugs this PR fixed
  (global-RNG toy unit, two non-strict ``json.dumps`` sites) stay
  re-detectable: reverting any fix would light the linter up again.
* **Dogfood + output stability** — ``src/repro`` lints clean (the
  blocking CI contract), and the JSON rendering is byte-stable and
  sorted so CI diffs between runs are meaningful.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.engine import (
    ALL_RULE_IDS,
    DEFAULT_CONFIG,
    Finding,
    LintConfig,
    lint_paths,
    lint_source,
    lint_unit,
    render_lint_unit,
)
from repro.analysis.report import render, render_json
from repro.analysis.rules import get_rules
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"

#: Fixture path that picks up the full default rule set.
LIB = "src/repro/fixture.py"


def rules_fired(path, source, rules=None):
    findings, _ = lint_source(path, source, rules=get_rules(rules))
    return sorted({finding.rule for finding in findings})


# ----------------------------------------------------------------------
# Engine mechanics
# ----------------------------------------------------------------------
def test_registry_matches_engine_catalog():
    assert tuple(sorted(rule.id for rule in get_rules())) == ALL_RULE_IDS


def test_unknown_rule_filter_rejected():
    with pytest.raises(ValueError, match="no-such-rule"):
        get_rules(["no-such-rule"])


def test_findings_sort_by_path_line_rule():
    a = Finding("b.py", 1, "determinism", "x")
    b = Finding("a.py", 9, "strict-json", "y")
    c = Finding("a.py", 2, "strict-json", "y")
    assert sorted([a, b, c]) == [c, b, a]


def test_syntax_error_becomes_parse_finding():
    findings, _ = lint_source(LIB, "def broken(:\n")
    assert [finding.rule for finding in findings] == ["parse-error"]


def test_ruleset_selection_longest_match_wins():
    config = DEFAULT_CONFIG
    assert config.rules_for("src/repro/serve/engine.py") == ALL_RULE_IDS
    assert "determinism" not in config.rules_for("tests/test_x.py")
    assert "bare-except" not in config.rules_for("benchmarks/test_y.py")
    # Unmatched paths (tmp fixture dirs) get everything.
    assert config.rules_for("/tmp/whatever/snippet.py") == ALL_RULE_IDS


def test_suppression_on_line_and_line_above():
    same_line = "import numpy as np\nx = np.random.rand()  # repro: allow(determinism)\n"
    line_above = (
        "import numpy as np\n"
        "# repro: allow(determinism)\n"
        "x = np.random.rand()\n"
    )
    wrong_id = "import numpy as np\nx = np.random.rand()  # repro: allow(strict-json)\n"
    for source, expected in ((same_line, 1), (line_above, 1), (wrong_id, 0)):
        findings, suppressed = lint_source(LIB, source)
        assert suppressed == expected
        assert bool(findings) == (expected == 0)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_determinism_flags_global_numpy_and_stdlib_rng():
    source = (
        "import numpy as np\n"
        "import random\n"
        "a = np.random.rand()\n"
        "b = np.random.randint(4)\n"
        "c = random.random()\n"
    )
    findings, _ = lint_source(LIB, source, rules=get_rules(["determinism"]))
    assert [finding.line for finding in findings] == [3, 4, 5]


def test_determinism_allows_seeded_generators():
    source = (
        "import numpy as np\n"
        "import random\n"
        "rng = np.random.default_rng(7)\n"
        "a = rng.random()\n"
        "r = random.Random(7)\n"
        "b = r.random()\n"
    )
    assert rules_fired(LIB, source) == []


def test_determinism_flags_wall_clock_in_key_helpers_only():
    keyish = (
        "import time\n"
        "def cache_key():\n"
        "    return time.time()\n"
    )
    plain = (
        "import time\n"
        "def elapsed():\n"
        "    return time.time()\n"
    )
    assert rules_fired(LIB, keyish) == ["determinism"]
    assert rules_fired(LIB, plain) == []


def test_determinism_skipped_for_test_paths():
    source = "import numpy as np\nx = np.random.rand()\n"
    assert rules_fired("tests/test_fixture.py", source) == []


# ----------------------------------------------------------------------
# strict-json
# ----------------------------------------------------------------------
def test_strict_json_requires_allow_nan_false():
    bad = "import json\npayload = json.dumps({'a': 1})\n"
    good = "import json\npayload = json.dumps({'a': 1}, allow_nan=False)\n"
    assert rules_fired(LIB, bad) == ["strict-json"]
    assert rules_fired(LIB, good) == []


def test_strict_json_whitelists_io_routing_layer():
    bad = "import json\npayload = json.dumps({'a': 1})\n"
    assert rules_fired("src/repro/experiments/io.py", bad) == []


def test_strict_json_suppression_honored():
    source = (
        "import json\n"
        "payload = json.dumps({'a': 1})  # repro: allow(strict-json)\n"
    )
    findings, suppressed = lint_source(LIB, source)
    assert findings == [] and suppressed == 1


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------
GUARDED_CLASS = """\
import threading

class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._state = 0  # guarded-by: _lock

    def bad(self):
        return self._state

    def good(self):
        with self._lock:
            return self._state

    def _peek_locked(self):
        return self._state
"""


def test_guarded_attr_needs_its_lock():
    findings, _ = lint_source(LIB, GUARDED_CLASS, rules=get_rules(["lock-discipline"]))
    assert [finding.line for finding in findings] == [9]
    assert "_state" in findings[0].message


def test_guarded_attr_suppression_honored():
    source = GUARDED_CLASS.replace(
        "return self._state\n\n    def good",
        "return self._state  # repro: allow(lock-discipline)\n\n    def good",
        1,
    )
    findings, suppressed = lint_source(LIB, source)
    assert findings == [] and suppressed == 1


def test_blocking_calls_while_holding_a_lock():
    source = (
        "import time\n"
        "import threading\n"
        "lock = threading.Lock()\n"
        "def hold(worker_thread, task_queue):\n"
        "    with lock:\n"
        "        time.sleep(1)\n"
        "        worker_thread.join()\n"
        "        task_queue.get()\n"
    )
    findings, _ = lint_source(LIB, source, rules=get_rules(["lock-discipline"]))
    assert [finding.line for finding in findings] == [6, 7, 8]


def test_string_join_and_lease_release_not_flagged():
    source = (
        "def fine(lease, names):\n"
        "    lease.release()\n"
        "    return ', '.join(names)\n"
    )
    assert rules_fired(LIB, source) == []


def test_raw_acquire_release_flagged():
    source = (
        "import threading\n"
        "lock = threading.Lock()\n"
        "def manual():\n"
        "    lock.acquire()\n"
        "    lock.release()\n"
    )
    findings, _ = lint_source(LIB, source, rules=get_rules(["lock-discipline"]))
    assert [finding.line for finding in findings] == [4, 5]


# ----------------------------------------------------------------------
# thread-lifecycle
# ----------------------------------------------------------------------
def test_undaemonized_unjoined_thread_flagged():
    source = (
        "import threading\n"
        "def leak(fn):\n"
        "    threading.Thread(target=fn).start()\n"
    )
    assert rules_fired(LIB, source) == ["thread-lifecycle"]


def test_daemon_or_joined_threads_pass():
    daemon = (
        "import threading\n"
        "def ok(fn):\n"
        "    threading.Thread(target=fn, daemon=True).start()\n"
    )
    joined = (
        "import threading\n"
        "def ok(fn):\n"
        "    t = threading.Thread(target=fn)\n"
        "    t.start()\n"
        "    t.join()\n"
    )
    sibling_join = (
        "import threading\n"
        "class Owner:\n"
        "    def start(self, fn):\n"
        "        self._t = threading.Thread(target=fn)\n"
        "        self._t.start()\n"
        "    def close(self):\n"
        "        self._t.join()\n"
    )
    for source in (daemon, joined, sibling_join):
        assert rules_fired(LIB, source) == []


def test_thread_lifecycle_suppression_honored():
    source = (
        "import threading\n"
        "def fire_and_forget(fn):\n"
        "    # repro: allow(thread-lifecycle)\n"
        "    threading.Thread(target=fn).start()\n"
    )
    findings, suppressed = lint_source(LIB, source)
    assert findings == [] and suppressed == 1


def test_unjoined_process_flagged():
    direct = (
        "import multiprocessing\n"
        "def leak(fn):\n"
        "    multiprocessing.Process(target=fn).start()\n"
    )
    via_context = (
        "import multiprocessing\n"
        "def leak(fn):\n"
        "    ctx = multiprocessing.get_context('fork')\n"
        "    ctx.Process(target=fn).start()\n"
    )
    for source in (direct, via_context):
        assert rules_fired(LIB, source) == ["thread-lifecycle"]


def test_daemon_or_joined_processes_pass():
    daemon = (
        "import multiprocessing\n"
        "def ok(fn):\n"
        "    ctx = multiprocessing.get_context('fork')\n"
        "    ctx.Process(target=fn, daemon=True).start()\n"
    )
    joined = (
        "import multiprocessing\n"
        "def ok(fn):\n"
        "    p = multiprocessing.Process(target=fn)\n"
        "    p.start()\n"
        "    p.join()\n"
    )
    sibling_join = (
        "import multiprocessing\n"
        "class Pool:\n"
        "    def spawn(self, fn):\n"
        "        self._p = multiprocessing.get_context('fork').Process(target=fn)\n"
        "        self._p.start()\n"
        "    def close(self):\n"
        "        self._p.join()\n"
    )
    for source in (daemon, joined, sibling_join):
        assert rules_fired(LIB, source) == []


def test_raw_os_fork_flagged():
    source = (
        "import os\n"
        "def split():\n"
        "    pid = os.fork()\n"
        "    return pid\n"
    )
    assert rules_fired(LIB, source) == ["thread-lifecycle"]
    # join() nearby does not excuse os.fork — it is flagged
    # unconditionally, unlike Thread/Process constructions.
    joined = (
        "import os\n"
        "def split(worker):\n"
        "    pid = os.fork()\n"
        "    worker.join()\n"
        "    return pid\n"
    )
    assert rules_fired(LIB, joined) == ["thread-lifecycle"]


# ----------------------------------------------------------------------
# bare-except
# ----------------------------------------------------------------------
def test_silent_blanket_except_flagged():
    bare = "try:\n    x = 1\nexcept:\n    pass\n"
    blanket = "try:\n    x = 1\nexcept Exception:\n    x = 0\n"
    assert rules_fired(LIB, bare) == ["bare-except"]
    assert rules_fired(LIB, blanket) == ["bare-except"]


def test_handled_blanket_excepts_pass():
    reraise = "try:\n    x = 1\nexcept Exception:\n    raise\n"
    uses_error = (
        "errors = []\n"
        "try:\n    x = 1\nexcept Exception as exc:\n    errors.append(exc)\n"
    )
    logs = (
        "import logging\n"
        "try:\n    x = 1\nexcept Exception:\n    logging.warning('boom')\n"
    )
    for source in (reraise, uses_error, logs):
        assert rules_fired(LIB, source) == []


def test_bare_except_skipped_for_test_paths():
    source = "try:\n    x = 1\nexcept Exception:\n    pass\n"
    assert rules_fired("tests/test_fixture.py", source) == []


# ----------------------------------------------------------------------
# Regression fixtures: the three satellite bugs stay re-detectable
# ----------------------------------------------------------------------
def test_redetects_global_rng_toy_unit():
    """The pre-fix body of ``runner/testing.py:toy_unit``."""
    reverted = (
        "import numpy as np\n"
        "def toy_unit(value, seed=0):\n"
        "    return {'noise': float(np.random.rand())}\n"
    )
    assert rules_fired("src/repro/runner/testing.py", reverted) == ["determinism"]


def test_redetects_unstrict_cache_key_dumps():
    """The pre-fix ``experiments/presets.py:_cache_key`` call."""
    reverted = (
        "import json\n"
        "def _cache_key(model, seed):\n"
        "    return json.dumps({'model': model, 'seed': seed}, sort_keys=True)\n"
    )
    assert rules_fired("src/repro/experiments/presets.py", reverted) == ["strict-json"]


def test_redetects_unstrict_checkpoint_metadata_dumps():
    """The pre-fix ``utils/checkpoint.py`` metadata serialization."""
    reverted = (
        "import json\n"
        "def save(metadata):\n"
        "    return json.dumps(metadata).encode('utf-8')\n"
    )
    assert rules_fired("src/repro/utils/checkpoint.py", reverted) == ["strict-json"]


# ----------------------------------------------------------------------
# Dogfood: the library lints clean (the blocking CI contract)
# ----------------------------------------------------------------------
def test_src_repro_lints_clean():
    report = lint_paths([SRC])
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert not report.findings, f"repro lint src/repro found:\n{rendered}"
    assert report.files > 90  # the walker actually visited the tree


# ----------------------------------------------------------------------
# Output stability
# ----------------------------------------------------------------------
def test_json_output_stable_and_sorted(tmp_path):
    messy = tmp_path / "b_module.py"
    messy.write_text(
        "import json\n"
        "import numpy as np\n"
        "x = np.random.rand()\n"
        "y = json.dumps({'x': 1})\n"
    )
    other = tmp_path / "a_module.py"
    other.write_text("import json\nz = json.dumps({'z': 2})\n")

    first = render_json(lint_paths([tmp_path]))
    second = render_json(lint_paths([tmp_path]))
    assert first == second  # byte-stable across runs

    document = json.loads(first)
    locations = [
        (finding["path"], finding["line"], finding["rule"])
        for finding in document["findings"]
    ]
    assert locations == sorted(locations)
    assert document["total"] == 3
    assert document["counts"] == {"determinism": 1, "strict-json": 2}
    # Keys are serialized sorted, so textual diffs never churn on order.
    assert first.index('"counts"') < first.index('"findings"') < first.index('"total"')


def test_render_rejects_unknown_format():
    with pytest.raises(ValueError, match="format"):
        render(lint_paths([]), "yaml")


# ----------------------------------------------------------------------
# CLI + runner unit family
# ----------------------------------------------------------------------
def test_cli_lint_clean_exits_zero(capsys):
    assert main(["lint", str(SRC), "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["total"] == 0


def test_cli_lint_findings_exit_one(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nx = np.random.rand()\n")
    assert main(["lint", str(bad)]) == 1
    assert "[determinism]" in capsys.readouterr().out


def test_cli_lint_rule_filter(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import json, numpy as np\nx = np.random.rand()\n")
    assert main(["lint", str(bad), "--rule", "strict-json"]) == 0
    capsys.readouterr()


def test_cli_lint_missing_path_exits_two(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "nope")]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_lint_unit_family(tmp_path):
    from repro.runner.registry import build_units, resolve_target

    bad = tmp_path / "bad.py"
    bad.write_text("import json\nx = json.dumps({})\n")
    units = build_units("lint", paths=[str(bad)], tag="rev0")
    assert len(units) == 1
    assert units[0].name.endswith("-rev0")
    result = resolve_target(units[0].target)(**units[0].params)
    assert result["total"] == 1
    assert result["tag"] == "rev0"
    assert result["counts"] == {"strict-json": 1}
    rendered = render_lint_unit(result)
    assert "1 findings" in rendered and "strict-json" in rendered
    # Same spec, same result document — the runner's cache contract.
    assert result == resolve_target(units[0].target)(**units[0].params)


def test_lint_unit_specs_are_content_keyable():
    from repro.runner.registry import build_units

    units = build_units("lint", paths=["src/repro"], tag="a")
    again = build_units("lint", paths=["src/repro"], tag="a")
    other = build_units("lint", paths=["src/repro"], tag="b")
    assert units[0].content_key() == again[0].content_key()
    assert units[0].content_key() != other[0].content_key()
