"""Tests for repro.serve.engine: micro-batching, stats, lifecycle."""

import threading
import time

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.serve import (
    EngineClosed,
    InferenceEngine,
    QueueFull,
    RequestCancelled,
    ShutdownTimeout,
    combine_serve_stats,
)
from repro.tensor.tensor import Tensor


def make_toy_model(in_features: int = 3, out_features: int = 2) -> Module:
    """A deterministic linear map so outputs identify their inputs."""
    model = Linear(in_features, out_features, rng=np.random.default_rng(0))
    model.weight.data[...] = np.arange(
        out_features * in_features, dtype=np.float64
    ).reshape(out_features, in_features)
    model.bias.data[...] = 0.0
    return model


def expected_output(model: Module, x: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.float64) @ model.weight.data.T


class FailingModel(Module):
    def forward(self, x):
        raise RuntimeError("kaboom")


class SlowModel(Module):
    """A forward slow enough to outlive a short close() timeout."""

    def __init__(self, delay_s: float = 0.4):
        super().__init__()
        self.delay_s = delay_s

    def forward(self, x):
        time.sleep(self.delay_s)
        return x


class TestBasicServing:
    def test_predict_returns_model_output(self):
        model = make_toy_model()
        with InferenceEngine(model) as engine:
            x = np.array([1.0, 2.0, 3.0])
            np.testing.assert_array_equal(engine.predict(x), expected_output(model, x))

    def test_results_map_to_their_requests(self):
        model = make_toy_model()
        inputs = np.arange(30, dtype=np.float64).reshape(10, 3)
        with InferenceEngine(model, batch_window_s=0.02, max_batch_size=4) as engine:
            pendings = [engine.submit(x) for x in inputs]
            for x, pending in zip(inputs, pendings):
                np.testing.assert_array_equal(
                    pending.result(timeout=10), expected_output(model, x)
                )

    def test_concurrent_clients_all_answered(self):
        model = make_toy_model()
        inputs = np.arange(60, dtype=np.float64).reshape(20, 3)
        results = [None] * len(inputs)

        with InferenceEngine(model, batch_window_s=0.005, max_batch_size=8) as engine:

            def client(offset):
                for index in range(offset, len(inputs), 4):
                    results[index] = engine.predict(inputs[index], timeout=10)

            threads = [threading.Thread(target=client, args=(c,)) for c in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for x, result in zip(inputs, results):
            np.testing.assert_array_equal(result, expected_output(model, x))


class TestMicroBatching:
    def test_queued_requests_coalesce_deterministically(self):
        # autostart=False: everything queues, then one start() drains it
        # with full batches — deterministic composition.
        model = make_toy_model()
        engine = InferenceEngine(
            model, batch_window_s=0.0, max_batch_size=4,
            record_batches=True, autostart=False,
        )
        inputs = np.arange(30, dtype=np.float64).reshape(10, 3)
        pendings = [engine.submit(x) for x in inputs]
        engine.start()
        engine.drain(timeout=10)
        stats = engine.stats
        assert stats.forwards == 3  # 4 + 4 + 2
        assert [len(batch) for batch in engine.executed_batches()] == [4, 4, 2]
        assert stats.coalesced_forwards == 3
        assert stats.batched_requests == 10
        assert stats.max_batch_seen == 4
        for x, pending in zip(inputs, pendings):
            np.testing.assert_array_equal(pending.result(), expected_output(model, x))
        engine.close()

    def test_max_batch_one_is_sequential(self):
        model = make_toy_model()
        engine = InferenceEngine(
            model, batch_window_s=0.0, max_batch_size=1,
            record_batches=True, autostart=False,
        )
        for x in np.arange(12, dtype=np.float64).reshape(4, 3):
            engine.submit(x)
        engine.start()
        engine.drain(timeout=10)
        stats = engine.stats
        assert stats.forwards == 4
        assert stats.coalesced_forwards == 0
        assert stats.mean_batch_size == 1.0
        engine.close()

    def test_window_coalesces_sparse_arrivals(self):
        # A generous window lets requests submitted after the worker
        # opened a batch still join it.
        model = make_toy_model()
        with InferenceEngine(
            model, batch_window_s=0.25, max_batch_size=8, record_batches=True
        ) as engine:
            pendings = [
                engine.submit(x)
                for x in np.arange(24, dtype=np.float64).reshape(8, 3)
            ]
            for pending in pendings:
                pending.result(timeout=10)
            stats = engine.stats
        assert stats.forwards < 8  # strictly better than sequential
        assert stats.coalesced_forwards >= 1

    def test_stats_accounting_identities(self):
        model = make_toy_model()
        engine = InferenceEngine(
            model, batch_window_s=0.0, max_batch_size=3,
            record_batches=True, autostart=False,
        )
        inputs = np.arange(21, dtype=np.float64).reshape(7, 3)
        pendings = [engine.submit(x) for x in inputs]
        engine.start()
        engine.drain(timeout=10)
        stats = engine.stats
        # Every request is served by exactly one executed batch.
        assert sum(len(batch) for batch in engine.executed_batches()) == stats.served
        assert stats.requests == stats.completed + stats.errors + stats.cancelled
        assert stats.completed == len(stats.latencies_s)
        assert stats.mean_batch_size == pytest.approx(stats.served / stats.forwards)
        assert all(pending.latency_s >= 0 for pending in pendings)
        assert stats.max_latency_s >= stats.mean_latency_s > 0
        assert stats.latency_percentile(95) <= stats.max_latency_s
        engine.close()

    def test_snapshot_is_decoupled(self):
        model = make_toy_model()
        with InferenceEngine(model) as engine:
            engine.predict(np.ones(3))
            snapshot = engine.stats
            engine.predict(np.ones(3))
            assert snapshot.requests == 1
            assert engine.stats.requests == 2

    def test_record_batches_off_by_default(self):
        with InferenceEngine(make_toy_model()) as engine:
            with pytest.raises(RuntimeError, match="record_batches"):
                engine.executed_batches()


class TestErrorsAndLifecycle:
    def test_forward_error_propagates_and_engine_survives(self):
        failing = FailingModel()
        with InferenceEngine(failing, max_batch_size=2) as engine:
            pending = engine.submit(np.ones(3))
            with pytest.raises(RuntimeError, match="kaboom"):
                pending.result(timeout=10)
            assert engine.stats.errors == 1

    def test_bad_shape_poisons_only_its_batch(self):
        model = make_toy_model()
        engine = InferenceEngine(
            model, batch_window_s=0.0, max_batch_size=8, autostart=False
        )
        good = engine.submit(np.ones(3))
        bad = engine.submit(np.ones(5))  # np.stack raises on ragged shapes
        engine.start()
        engine.drain(timeout=10)
        with pytest.raises(ValueError):
            bad.result(timeout=10)
        with pytest.raises(ValueError):
            good.result(timeout=10)  # same batch, same failure
        # The engine keeps serving afterwards.
        np.testing.assert_array_equal(
            engine.predict(np.ones(3), timeout=10),
            expected_output(model, np.ones(3)),
        )
        engine.close()

    def test_close_drains_pending_requests(self):
        model = make_toy_model()
        engine = InferenceEngine(
            model, batch_window_s=0.0, max_batch_size=4, autostart=False
        )
        pendings = [engine.submit(np.full(3, i)) for i in range(6)]
        engine.start()
        engine.close(drain=True, timeout=10)
        for i, pending in enumerate(pendings):
            np.testing.assert_array_equal(
                pending.result(timeout=1), expected_output(model, np.full(3, i))
            )

    def test_close_without_drain_cancels(self):
        model = make_toy_model()
        engine = InferenceEngine(model, autostart=False)
        pending = engine.submit(np.ones(3))
        engine.close(drain=False)
        with pytest.raises(RequestCancelled):
            pending.result(timeout=1)
        assert engine.stats.cancelled == 1

    def test_close_unstarted_engine_drains_inline(self):
        model = make_toy_model()
        engine = InferenceEngine(
            model, batch_window_s=0.0, max_batch_size=4, autostart=False
        )
        pendings = [engine.submit(np.full(3, i)) for i in range(5)]
        engine.close(drain=True)
        for i, pending in enumerate(pendings):
            np.testing.assert_array_equal(
                pending.result(timeout=1), expected_output(model, np.full(3, i))
            )

    def test_submit_after_close_raises(self):
        engine = InferenceEngine(make_toy_model())
        engine.close()
        with pytest.raises(EngineClosed):
            engine.submit(np.ones(3))
        with pytest.raises(EngineClosed):
            engine.start()

    def test_close_is_idempotent(self):
        engine = InferenceEngine(make_toy_model())
        engine.close()
        engine.close()

    def test_drain_on_unstarted_engine_raises(self):
        engine = InferenceEngine(make_toy_model(), autostart=False)
        engine.submit(np.ones(3))
        with pytest.raises(RuntimeError, match="never started"):
            engine.drain(timeout=1)
        engine.close()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            InferenceEngine(make_toy_model(), max_batch_size=0)
        with pytest.raises(ValueError):
            InferenceEngine(make_toy_model(), batch_window_s=-1.0)

    def test_result_timeout(self):
        engine = InferenceEngine(make_toy_model(), autostart=False)
        pending = engine.submit(np.ones(3))
        with pytest.raises(TimeoutError):
            pending.result(timeout=0.01)
        engine.close(drain=False)

    def test_close_timeout_raises_while_worker_still_runs(self):
        """close(timeout) must not report success while the worker is
        alive — callers would tear down state under a running thread."""
        engine = InferenceEngine(SlowModel(delay_s=0.4), batch_window_s=0.0)
        pending = engine.submit(np.ones(3))
        with pytest.raises(ShutdownTimeout, match="still running"):
            engine.close(drain=True, timeout=0.02)
        # The engine was NOT closed: the request still completes, and a
        # patient close() succeeds.
        np.testing.assert_array_equal(pending.result(timeout=10), np.ones(3))
        engine.close(drain=True, timeout=10)
        assert engine.stats.completed == 1

    def test_close_with_generous_timeout_succeeds(self):
        engine = InferenceEngine(make_toy_model())
        engine.predict(np.ones(3))
        engine.close(timeout=10)  # no raise


class TestAdmission:
    """Bounded admission: max_pending sheds load instead of growing."""

    def test_submit_beyond_budget_sheds(self):
        model = make_toy_model()
        engine = InferenceEngine(model, autostart=False, max_pending=2)
        admitted = [engine.submit(np.ones(3)) for _ in range(2)]
        with pytest.raises(QueueFull, match="max_pending=2"):
            engine.submit(np.ones(3))
        stats = engine.stats
        assert stats.requests == 2  # the shed submit is not a request
        assert stats.rejected == 1
        # Draining the backlog restores the admission budget.
        engine.start()
        engine.drain(timeout=10)
        recovered = engine.submit(np.ones(3))
        np.testing.assert_array_equal(
            recovered.result(timeout=10), expected_output(model, np.ones(3))
        )
        engine.close(timeout=10)
        assert all(pending.done() for pending in admitted)
        assert engine.stats.requests == 3 and engine.stats.rejected == 1

    def test_in_flight_work_counts_against_budget(self):
        """The budget covers admitted-but-unanswered work, not just the
        queue — otherwise a slow forward would hide unbounded growth."""
        engine = InferenceEngine(
            SlowModel(delay_s=0.3), batch_window_s=0.0, max_batch_size=1,
            max_pending=1,
        )
        pending = engine.submit(np.ones(3))
        deadline = time.monotonic() + 5.0
        saw_inflight_rejection = False
        while time.monotonic() < deadline:
            with engine._cond:
                in_flight = engine._in_flight
            if in_flight:
                # The queue is empty (the worker popped the request) but
                # the budget is still spent until the answer lands.
                with pytest.raises(QueueFull):
                    engine.submit(np.ones(3))
                saw_inflight_rejection = True
                break
            time.sleep(0.005)
        assert saw_inflight_rejection
        np.testing.assert_array_equal(pending.result(timeout=10), np.ones(3))
        engine.close(timeout=10)

    def test_rejected_merges_and_summarizes(self):
        engine = InferenceEngine(make_toy_model(), autostart=False, max_pending=1)
        engine.submit(np.ones(3))
        with pytest.raises(QueueFull):
            engine.submit(np.ones(3))
        merged = combine_serve_stats([engine.stats, engine.stats])
        assert merged.rejected == 2
        assert "shed at admission" in engine.stats.summary()
        engine.close(drain=False)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="max_pending"):
            InferenceEngine(make_toy_model(), autostart=False, max_pending=0)

    def test_unbounded_by_default(self):
        engine = InferenceEngine(make_toy_model(), autostart=False)
        for _ in range(64):
            engine.submit(np.ones(3))
        assert engine.stats.rejected == 0
        engine.close(drain=False)


class TestInputDtype:
    def test_dtype_follows_model_parameters(self):
        model = make_toy_model()
        with InferenceEngine(model) as engine:
            assert engine.input_dtype == np.float64
            assert engine.predict(np.ones(3, dtype=np.float32)).dtype == np.float64

    def test_float32_model_serves_float32_without_upcast(self):
        model = make_toy_model()
        model.weight.data = model.weight.data.astype(np.float32)
        model.bias.data = model.bias.data.astype(np.float32)
        with InferenceEngine(model, batch_window_s=0.0) as engine:
            assert engine.input_dtype == np.float32
            x = np.arange(3, dtype=np.float64)
            got = engine.predict(x, timeout=10)
            # The engine computed in the model's dtype (no silent
            # float64 upcast) and matches the direct float32 forward.
            assert got.dtype == np.float32
            expected = x.astype(np.float32) @ model.weight.data.T + model.bias.data
            np.testing.assert_array_equal(got, expected)

    def test_parameter_free_model_defaults_to_float64(self):
        with InferenceEngine(FailingModel(), autostart=False) as engine:
            assert engine.input_dtype == np.float64


class TestCombinedStats:
    def test_combine_sums_counters_and_maxes_high_water_marks(self):
        model = make_toy_model()
        engines = [
            InferenceEngine(
                model if index == 0 else make_toy_model(),
                batch_window_s=0.0,
                max_batch_size=2,
                autostart=False,
            )
            for index in range(2)
        ]
        for index, engine in enumerate(engines):
            for _ in range(2 + index):
                engine.submit(np.ones(3))
            engine.start()
            engine.drain(timeout=10)
        snapshots = [engine.stats for engine in engines]
        merged = combine_serve_stats(snapshots)
        assert merged.requests == sum(s.requests for s in snapshots) == 5
        assert merged.completed == 5
        assert merged.forwards == sum(s.forwards for s in snapshots)
        assert merged.max_batch_seen == max(s.max_batch_seen for s in snapshots)
        assert merged.max_queue_depth == max(s.max_queue_depth for s in snapshots)
        assert merged.total_latency_s == pytest.approx(
            sum(s.total_latency_s for s in snapshots)
        )
        assert len(merged.latencies_s) == 5
        for engine in engines:
            engine.close()

    def test_latency_window_keeps_samples_from_every_engine(self):
        """Merging full windows must not let the last engine displace
        the others — each engine keeps an even share of the merged
        percentile window."""
        from repro.serve.engine import LATENCY_WINDOW, ServeStats

        slow = ServeStats()
        slow.latencies_s.extend([1.0] * LATENCY_WINDOW)
        fast = ServeStats()
        fast.latencies_s.extend([0.001] * LATENCY_WINDOW)
        merged = combine_serve_stats([slow, fast])
        samples = list(merged.latencies_s)
        assert samples.count(1.0) == LATENCY_WINDOW // 2
        assert samples.count(0.001) == LATENCY_WINDOW // 2
        # The slow engine is visible in the merged percentiles.
        assert merged.latency_percentile(75) == 1.0

    def test_artifact_annotation_rides_along(self):
        with InferenceEngine(make_toy_model()) as engine:
            engine.annotate_artifact(100, 60, 40)
            stats = engine.stats
        assert (stats.artifact_nbytes, stats.payload_nbytes, stats.sidecar_nbytes) == (
            100, 60, 40,
        )
        assert "artifact: 100 bytes (payload 60, sidecar 40)" in stats.summary()
        merged = combine_serve_stats([stats, stats])
        assert merged.artifact_nbytes == 100  # max, not sum


class TestParityReplay:
    def test_every_batch_is_bit_exact_with_a_direct_forward(self):
        from repro.tensor.tensor import no_grad

        model = make_toy_model()
        engine = InferenceEngine(
            model, batch_window_s=0.0, max_batch_size=4,
            record_batches=True, autostart=False,
        )
        inputs = np.random.default_rng(7).standard_normal((11, 3))
        pendings = [engine.submit(x) for x in inputs]
        engine.start()
        engine.drain(timeout=10)
        outputs = {p.request_id: p.result() for p in pendings}
        ids = [p.request_id for p in pendings]
        for batch in engine.executed_batches():
            rows = [ids.index(rid) for rid in batch]
            with no_grad():
                reference = model(Tensor(np.stack([inputs[r] for r in rows]))).data
            for position, rid in enumerate(batch):
                np.testing.assert_array_equal(outputs[rid], reference[position])
        engine.close()


class TestChaosPrimitives:
    """The engine-level building blocks the autoscaling pool's death
    handling relies on: kill(), worker_died, take_orphans(), adopt()."""

    def wait_for_death(self, engine, timeout_s: float = 5.0) -> None:
        deadline = time.monotonic() + timeout_s
        while not engine.worker_died:
            if time.monotonic() > deadline:
                raise AssertionError("killed worker did not die in time")
            time.sleep(0.005)

    def test_kill_before_start_raises(self):
        engine = InferenceEngine(make_toy_model(), autostart=False)
        with pytest.raises(EngineClosed):
            engine.kill()
        engine.close()

    def test_kill_flags_worker_died_even_when_idle(self):
        engine = InferenceEngine(make_toy_model())
        assert not engine.worker_died
        engine.kill()
        self.wait_for_death(engine)

    def test_drain_on_dead_engine_raises(self):
        from repro.serve import EngineDied

        engine = InferenceEngine(make_toy_model())
        engine.kill()
        self.wait_for_death(engine)
        engine.drain(timeout=10)  # nothing outstanding: trivially drained
        pending = engine.submit(np.zeros(3))
        with pytest.raises(EngineDied, match="never drain"):
            engine.drain(timeout=10)
        engine.close()
        with pytest.raises(EngineDied):
            pending.result(timeout=10)

    def test_take_orphans_returns_unanswered_queue(self):
        engine = InferenceEngine(make_toy_model())
        engine.kill()
        self.wait_for_death(engine)
        # A dead-but-unswept engine still accepts submits: they queue
        # behind a worker that will never run.
        pendings = [engine.submit(np.zeros(3)) for _ in range(4)]
        assert engine.queue_depth == 4
        orphans = engine.take_orphans()
        assert len(orphans) == 4
        assert {o.pending for o in orphans} == set(pendings)
        assert engine.queue_depth == 0
        # The orphans were subtracted: whoever adopts them re-counts.
        assert engine.stats.requests == 0
        assert engine.take_orphans() == []  # idempotent
        engine.close()

    def test_adopt_remaps_request_identity(self):
        model = make_toy_model()
        dead = InferenceEngine(model)
        dead.kill()
        self.wait_for_death(dead)
        x = np.array([1.0, 2.0, 3.0])
        pending = dead.submit(x)
        (orphan,) = dead.take_orphans()
        with InferenceEngine(model) as rescue:
            filler = rescue.submit(np.zeros(3))  # desynchronise the rid counters
            filler.result(timeout=10)
            rescue.adopt(orphan)
            np.testing.assert_array_equal(
                pending.result(timeout=10), expected_output(model, x)
            )
            # The adopted request carries the rescuer's engine-local id,
            # so recorded batches resolve it correctly.
            assert pending.request_id == orphan.rid
            assert rescue.stats.completed == 2
        dead.close()

    def test_close_answers_orphans_loudly(self):
        from repro.serve import EngineDied

        engine = InferenceEngine(make_toy_model())
        engine.kill()
        self.wait_for_death(engine)
        pending = engine.submit(np.zeros(3))
        engine.close()
        with pytest.raises(EngineDied, match="died before answering"):
            pending.result(timeout=10)
        stats = engine.stats
        assert stats.errors == 1
        assert stats.requests == 1

    def test_service_time_is_within_latency(self):
        engine = InferenceEngine(SlowModel(delay_s=0.05))
        pending = engine.submit(np.zeros(3))
        pending.result(timeout=10)
        assert pending.service_s is not None
        assert 0.0 < pending.service_s <= pending.latency_s
        engine.close()
