"""Tests for the Figure 5 experiment result container and rendering."""

import numpy as np
import pytest

from repro.experiments.fig5 import BIT_SETTINGS, Fig5Result, render


def make_result():
    result = Fig5Result(fp_accuracy=0.86)
    for i, setting in enumerate(BIT_SETTINGS):
        result.cq_accuracy[setting] = 0.5 + 0.1 * i
        result.wn_accuracy[setting] = 0.45 + 0.1 * i
        result.cq_avg_bits[setting] = float(setting[0]) - 0.05
        result.wn_overflow[setting] = 0.01 * i
    return result


class TestFig5Render:
    def test_all_settings_rendered(self):
        text = render(make_result())
        for weight_bits, act_bits in BIT_SETTINGS:
            assert f"{weight_bits}.0/{act_bits}.0" in text

    def test_fp_reference_included(self):
        assert "0.8600" in render(make_result())

    def test_missing_setting_renders_nan(self):
        result = Fig5Result(fp_accuracy=0.9)
        text = render(result)
        assert "nan" in text

    def test_paper_settings_are_asymmetric(self):
        # The figure's protocol quantizes activations more finely than
        # weights at every setting.
        for weight_bits, act_bits in BIT_SETTINGS:
            assert act_bits > weight_bits

    def test_budgets_recorded_under_setting(self):
        result = make_result()
        for setting in BIT_SETTINGS:
            assert result.cq_avg_bits[setting] <= setting[0]
