"""Tests for the synthetic dataset generator, loaders and transforms."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    Compose,
    DataLoader,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    make_synth_cifar,
    train_val_test_split,
)
from repro.data.transforms import GaussianNoise


class TestSynthCIFAR:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_synth_cifar(
            num_classes=6, image_size=12, train_per_class=20, val_per_class=5,
            test_per_class=5, seed=3,
        )

    def test_shapes(self, dataset):
        assert dataset.train_images.shape == (120, 3, 12, 12)
        assert dataset.val_images.shape == (30, 3, 12, 12)
        assert dataset.test_images.shape == (30, 3, 12, 12)

    def test_labels_balanced(self, dataset):
        values, counts = np.unique(dataset.train_labels, return_counts=True)
        np.testing.assert_array_equal(values, np.arange(6))
        assert np.all(counts == 20)

    def test_deterministic_given_seed(self):
        a = make_synth_cifar(num_classes=3, image_size=8, train_per_class=5, seed=9)
        b = make_synth_cifar(num_classes=3, image_size=8, train_per_class=5, seed=9)
        np.testing.assert_array_equal(a.train_images, b.train_images)
        np.testing.assert_array_equal(a.train_labels, b.train_labels)

    def test_different_seed_differs(self):
        a = make_synth_cifar(num_classes=3, image_size=8, train_per_class=5, seed=1)
        b = make_synth_cifar(num_classes=3, image_size=8, train_per_class=5, seed=2)
        assert not np.allclose(a.train_images, b.train_images)

    def test_roughly_unit_scale(self, dataset):
        assert dataset.train_images.std() == pytest.approx(1.0, abs=0.05)

    def test_class_batches_shapes(self, dataset):
        batches = dataset.class_batches(per_class=4, split="val")
        assert set(batches) == set(range(6))
        for images in batches.values():
            assert images.shape == (4, 3, 12, 12)

    def test_class_batches_capped_at_available(self, dataset):
        batches = dataset.class_batches(per_class=1000, split="test")
        assert all(len(images) == 5 for images in batches.values())

    def test_class_batches_unknown_split(self, dataset):
        with pytest.raises(KeyError):
            dataset.class_batches(2, split="bogus")

    def test_num_classes_and_shape_properties(self, dataset):
        assert dataset.num_classes == 6
        assert dataset.image_shape == (3, 12, 12)

    def test_classes_are_separable(self, dataset):
        """Nearest-prototype classification must beat chance by a wide
        margin — the datasets must be learnable for CQ's search to see
        meaningful accuracy signals."""
        prototypes = dataset.prototypes
        scores = np.einsum("nchw,mchw->nm", dataset.test_images, prototypes)
        accuracy = (scores.argmax(axis=1) == dataset.test_labels).mean()
        assert accuracy > 0.5

    def test_invalid_fraction_config(self):
        with pytest.raises(ValueError):
            make_synth_cifar(
                num_classes=2, shared_fraction=0.7, global_fraction=0.4,
                train_per_class=2,
            )

    def test_hundred_classes(self):
        dataset = make_synth_cifar(num_classes=100, image_size=8, train_per_class=2,
                                   val_per_class=1, test_per_class=1, seed=0)
        assert dataset.num_classes == 100
        assert len(np.unique(dataset.train_labels)) == 100


class TestArrayDataset:
    def test_len_and_getitem(self, rng):
        ds = ArrayDataset(rng.standard_normal((10, 3)), np.arange(10))
        assert len(ds) == 10
        image, label = ds[3]
        assert label == 3

    def test_length_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(rng.standard_normal((10, 3)), np.arange(5))

    def test_subset(self, rng):
        ds = ArrayDataset(rng.standard_normal((10, 3)), np.arange(10))
        sub = ds.subset([1, 3, 5])
        assert len(sub) == 3
        assert sub[1][1] == 3


class TestDataLoader:
    def make(self, n=10, batch_size=3, **kwargs):
        images = np.arange(n, dtype=np.float64).reshape(n, 1)
        return DataLoader(ArrayDataset(images, np.arange(n)), batch_size=batch_size, **kwargs)

    def test_batch_count(self):
        assert len(self.make(10, 3)) == 4
        assert len(self.make(10, 3, drop_last=True)) == 3
        assert len(self.make(9, 3)) == 3

    def test_batches_cover_all_samples(self):
        loader = self.make(10, 3)
        seen = np.concatenate([labels for _, labels in loader])
        np.testing.assert_array_equal(np.sort(seen), np.arange(10))

    def test_drop_last_drops_partial(self):
        loader = self.make(10, 3, drop_last=True)
        batches = list(loader)
        assert all(len(labels) == 3 for _, labels in batches)

    def test_shuffle_changes_order(self):
        loader = self.make(50, 50, shuffle=True, seed=0)
        (_, labels1) = next(iter(loader))
        assert not np.array_equal(labels1, np.arange(50))

    def test_shuffle_deterministic_with_seed(self):
        l1 = self.make(20, 20, shuffle=True, seed=5)
        l2 = self.make(20, 20, shuffle=True, seed=5)
        np.testing.assert_array_equal(
            next(iter(l1))[1], next(iter(l2))[1]
        )

    def test_transform_applied_per_batch(self):
        calls = []

        def transform(images, rng):
            calls.append(len(images))
            return images + 1.0

        images = np.zeros((6, 1))
        loader = DataLoader(
            ArrayDataset(images, np.zeros(6), transform=transform), batch_size=2
        )
        batches = list(loader)
        assert calls == [2, 2, 2]
        assert all((imgs == 1.0).all() for imgs, _ in batches)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            self.make(batch_size=0)


class TestTransforms:
    def test_flip_all(self, rng):
        images = rng.standard_normal((4, 3, 5, 5))
        flipped = RandomHorizontalFlip(p=1.0)(images, rng)
        np.testing.assert_array_equal(flipped, images[:, :, :, ::-1])

    def test_flip_none(self, rng):
        images = rng.standard_normal((4, 3, 5, 5))
        out = RandomHorizontalFlip(p=0.0)(images, rng)
        np.testing.assert_array_equal(out, images)

    def test_flip_does_not_mutate_input(self, rng):
        images = rng.standard_normal((4, 3, 5, 5))
        original = images.copy()
        RandomHorizontalFlip(p=1.0)(images, rng)
        np.testing.assert_array_equal(images, original)

    def test_flip_invalid_p(self):
        with pytest.raises(ValueError):
            RandomHorizontalFlip(p=2.0)

    def test_crop_preserves_shape(self, rng):
        images = rng.standard_normal((4, 3, 8, 8))
        out = RandomCrop(2)(images, rng)
        assert out.shape == images.shape

    def test_crop_zero_padding_identity(self, rng):
        images = rng.standard_normal((2, 1, 4, 4))
        np.testing.assert_array_equal(RandomCrop(0)(images, rng), images)

    def test_crop_negative_raises(self):
        with pytest.raises(ValueError):
            RandomCrop(-1)

    def test_normalize(self, rng):
        images = rng.standard_normal((5, 2, 3, 3)) * 4 + 7
        out = Normalize(mean=[7, 7], std=[4, 4])(images, rng)
        assert abs(out.mean()) < 0.5

    def test_normalize_zero_std_raises(self):
        with pytest.raises(ValueError):
            Normalize(mean=[0], std=[0])

    def test_gaussian_noise(self, rng):
        images = np.zeros((2, 1, 4, 4))
        out = GaussianNoise(0.5)(images, rng)
        assert out.std() > 0.2

    def test_gaussian_noise_zero_sigma_identity(self, rng):
        images = np.ones((2, 1, 4, 4))
        assert GaussianNoise(0.0)(images, rng) is images

    def test_compose_order(self, rng):
        images = np.ones((1, 1, 2, 2))
        transform = Compose([
            lambda x, r: x * 2,
            lambda x, r: x + 1,
        ])
        np.testing.assert_array_equal(transform(images, rng), images * 2 + 1)


class TestSplit:
    def test_fractions(self, rng):
        images = rng.standard_normal((100, 2))
        labels = np.arange(100)
        train, val, test = train_val_test_split(images, labels, 0.2, 0.1, seed=0)
        assert len(val) == 20 and len(test) == 10 and len(train) == 70

    def test_disjoint_and_complete(self, rng):
        images = rng.standard_normal((50, 2))
        labels = np.arange(50)
        train, val, test = train_val_test_split(images, labels, 0.2, 0.2, seed=1)
        combined = np.concatenate([train.labels, val.labels, test.labels])
        np.testing.assert_array_equal(np.sort(combined), np.arange(50))

    def test_invalid_fractions_raise(self, rng):
        with pytest.raises(ValueError):
            train_val_test_split(np.zeros((10, 1)), np.zeros(10), 0.6, 0.5)
