"""Construction and forward-pass smoke tests at the paper's full scale.

These confirm the `scale="paper"` geometry is wired correctly (32x32
inputs, full widths) without training anything.
"""

import numpy as np
import pytest

from repro.models import ResNet20, VGGSmall
from repro.quant.qmodules import quantizable_layer_names
from repro.tensor import Tensor

pytestmark = pytest.mark.slow


class TestPaperScaleConstruction:
    def test_vgg_small_paper_width(self):
        model = VGGSmall(
            num_classes=10, image_size=32, width=32, rng=np.random.default_rng(0)
        )
        out = model(Tensor(np.zeros((1, 3, 32, 32))))
        assert out.shape == (1, 10)
        # Paper-scale VGG-small has hundreds of thousands of parameters.
        assert model.num_parameters() > 400_000

    def test_resnet20_x1_paper_width(self):
        model = ResNet20(
            num_classes=10, base_width=16, expand=1, rng=np.random.default_rng(0)
        )
        out = model(Tensor(np.zeros((1, 3, 32, 32))))
        assert out.shape == (1, 10)
        # ResNet-20 for CIFAR-10 has ~0.27M parameters [1].
        assert 200_000 < model.num_parameters() < 350_000

    def test_resnet20_x5_parameter_ratio(self):
        x1 = ResNet20(base_width=16, expand=1, rng=np.random.default_rng(0))
        x5 = ResNet20(base_width=16, expand=5, rng=np.random.default_rng(0))
        ratio = x5.num_parameters() / x1.num_parameters()
        # Width x5 -> roughly x25 parameters in conv layers.
        assert 15 < ratio < 30

    def test_vgg_quantizable_layer_count_matches_figures(self):
        """The paper's Figure 6 shows 7 quantized layers for VGG-small."""
        model = VGGSmall(
            num_classes=100, image_size=32, width=32, rng=np.random.default_rng(0)
        )
        assert len(quantizable_layer_names(model)) == 7

    def test_synth_dataset_paper_geometry(self):
        from repro.experiments.presets import get_scale

        cfg = get_scale("paper")
        assert cfg.image_size == 32
        assert cfg.train_per_class_10 == 5000  # CIFAR-10 training-set size
        assert cfg.pretrain_epochs == 400  # the paper's schedule length
