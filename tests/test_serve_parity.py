"""The serving parity contract (tier-1).

Serving answers must be **bit-exact** with the served model's forward
on the batch the engine executed them in, end to end: fake-quant model
→ integer export → CQW1 bitstream on disk → artifact cache →
reconstructed model → micro-batching engine under concurrent load.
This is the serving twin of the evaluator's bit-exact contract
(docs/architecture.md) and must be preserved by any future serving
change.

Against the *original* fake-quantized model the guarantee depends on
the sidecar storage dtype: a ``float64`` sidecar round-trips the model
state losslessly (bitwise parity), while the compact default
``float32`` sidecar rounds the unquantized tail once at pack time —
the served model is then deterministic on every load but agrees with
the original only to float32 precision. Both are pinned here.

Multi-engine serving adds a third leg: every engine leased from one
cached artifact serves a bit-identical clone, so concurrent engines
must agree with the single-engine path bitwise.
"""

import threading

import numpy as np
import pytest

from repro.quant.export import export_quantized_weights, verify_export
from repro.serve import (
    ArtifactCache,
    ServeConfig,
    ServingSession,
    cycle_inputs,
    replay_requests,
    save_artifact,
    verify_replay,
)
from repro.tensor.tensor import Tensor, no_grad


@pytest.fixture(
    params=[
        (None, "float64"),
        (2, "float64"),
        (None, "float32"),
        (2, "float32"),
    ],
    ids=["weights-only-f64", "act2-f64", "weights-only-f32", "act2-f32"],
)
def served_setup(request, quantized_mlp_factory, tmp_path):
    """(fake-quant model, session serving its artifact from disk, inputs,
    sidecar dtype)."""
    act_bits, sidecar_dtype = request.param
    model, manifest = quantized_mlp_factory(act_bits=act_bits)
    # The export the artifact carries is strictly verified first: a
    # parity failure below then points at serving, not the export.
    verify_export(model, export_quantized_weights(model), strict=True)
    path = tmp_path / "model.cqw"
    save_artifact(path, model, manifest, sidecar_dtype=sidecar_dtype)
    cache = ArtifactCache()
    session = ServingSession(
        path,
        config=ServeConfig(
            batch_window_s=0.01, max_batch_size=4, record_batches=True
        ),
        cache=cache,
    )
    inputs = np.random.default_rng(42).standard_normal((18, 3, 8, 8))
    yield model, session, inputs, sidecar_dtype
    session.close()


def assert_source_parity(got, expected, sidecar_dtype):
    """Bitwise for lossless sidecars, float32-tight otherwise."""
    if sidecar_dtype == "float64":
        np.testing.assert_array_equal(got, expected)
    else:
        np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-6)


class TestServingParity:
    def test_concurrent_replay_is_bit_exact_with_fake_quant_model(self, served_setup):
        fake_quant, session, inputs, sidecar_dtype = served_setup
        run = replay_requests(session, inputs, concurrency=3)
        session.drain()

        # 1) Engine answers == serving model run directly on the same
        #    executed batches (the engine adds nothing) — bitwise for
        #    every sidecar dtype.
        assert verify_replay(session, inputs, run) == len(inputs)

        # 2) Serving model vs the *original* fake-quantized model,
        #    batch for batch: bitwise when the sidecar stored the model
        #    state losslessly, float32-tight for the compact sidecar.
        index_of = {rid: i for i, rid in enumerate(run.request_ids)}
        verified = 0
        for batch in session.engine.executed_batches():
            rows = [index_of[rid] for rid in batch]
            with no_grad():
                reference = fake_quant(
                    Tensor(np.stack([inputs[row] for row in rows]))
                ).data
            for position, row in enumerate(rows):
                assert_source_parity(
                    run.outputs[row], reference[position], sidecar_dtype
                )
                verified += 1
        assert verified == len(inputs)

    def test_single_request_parity(self, served_setup):
        fake_quant, session, inputs, sidecar_dtype = served_setup
        x = inputs[0]
        got = session.predict(x)
        with no_grad():
            expected = fake_quant(Tensor(x[None])).data[0]
        assert_source_parity(got, expected, sidecar_dtype)

    def test_serving_is_deterministic_across_loads(
        self, quantized_mlp_factory, tmp_path, rng
    ):
        """Whatever the sidecar rounded, two independent loads of the
        same bytes serve identical answers — the parity anchor is the
        artifact, not the original in-memory model."""
        model, manifest = quantized_mlp_factory()
        path = tmp_path / "model.cqw"
        save_artifact(path, model, manifest, sidecar_dtype="float32")
        x = rng.standard_normal((3, 8, 8))
        answers = []
        for _ in range(2):
            with ServingSession(path, cache=ArtifactCache()) as session:
                answers.append(session.predict(x))
        np.testing.assert_array_equal(answers[0], answers[1])


class TestMultiEngineParity:
    """Two engines leased from one cached artifact, driven from threads,
    must serve bit-exactly what the single-engine path serves."""

    @pytest.fixture
    def artifact_path(self, quantized_mlp_factory, tmp_path):
        model, manifest = quantized_mlp_factory(act_bits=2)
        path = tmp_path / "model.cqw"
        save_artifact(path, model, manifest)
        return path

    def test_two_leased_engines_match_single_engine_bitwise(self, artifact_path):
        cache = ArtifactCache()
        inputs = np.random.default_rng(7).standard_normal((24, 3, 8, 8))
        config = ServeConfig(
            batch_window_s=0.01, max_batch_size=4, record_batches=True
        )

        with ServingSession(artifact_path, config=config, cache=cache) as single:
            single_run = replay_requests(single, inputs, concurrency=3)
            assert verify_replay(single, inputs, single_run) == len(inputs)
            single_model = single.model  # the single-engine path's clone

        pooled_config = ServeConfig(
            batch_window_s=0.01, max_batch_size=4, record_batches=True, engines=2
        )
        with ServingSession(
            artifact_path, config=pooled_config, cache=cache
        ) as pooled:
            assert len(pooled.engines) == 2
            assert pooled.models[0] is not pooled.models[1]
            run = replay_requests(pooled, inputs, concurrency=4)
            # Both engines saw traffic (round-robin fan-out).
            assert sorted(set(run.engine_indices)) == [0, 1]
            # Every request is bit-exact with its own engine's model...
            assert verify_replay(pooled, inputs, run) == len(inputs)
            # ...and replaying each engine's executed batches through
            # the *single-engine session's* clone reproduces the pooled
            # answers bitwise: all leased clones are bit-identical.
            engine_rows = 0
            for engine_index, engine in enumerate(pooled.engines):
                index_of = {
                    rid: row
                    for row, (eng, rid) in enumerate(
                        zip(run.engine_indices, run.request_ids)
                    )
                    if eng == engine_index
                }
                for batch in engine.executed_batches():
                    rows = [index_of[rid] for rid in batch]
                    with no_grad():
                        reference = single_model(
                            Tensor(np.stack([inputs[row] for row in rows]))
                        ).data
                    for position, row in enumerate(rows):
                        np.testing.assert_array_equal(
                            run.outputs[row], reference[position]
                        )
                        engine_rows += 1
            assert engine_rows == len(inputs)
        # One parse+build, three leases (1 + 2), all returned.
        assert cache.stats.misses == 1
        assert cache.stats.leases == 3 and cache.stats.releases == 3
        assert cache.active_leases() == 0

    def test_verify_replay_requires_engine_map_for_pools(self, artifact_path):
        """Engine-local request ids collide across a pool: a hand-built
        ReplayRun without engine_indices must be rejected, not silently
        mis-attributed to engine 0."""
        from repro.serve import ReplayRun

        cache = ArtifactCache()
        inputs = np.random.default_rng(1).standard_normal((6, 3, 8, 8))
        config = ServeConfig(record_batches=True, engines=2)
        with ServingSession(artifact_path, config=config, cache=cache) as session:
            run = replay_requests(session, inputs, concurrency=2)
            stripped = ReplayRun(
                payload=run.payload,
                outputs=run.outputs,
                request_ids=run.request_ids,
            )
            with pytest.raises(ValueError, match="engine_indices"):
                verify_replay(session, inputs, stripped)
            # With the engine map, the same data verifies fully.
            assert verify_replay(session, inputs, run) == len(inputs)

    def test_threaded_clients_on_pooled_session(self, artifact_path):
        """Raw threaded predict() calls (not the replay harness) across
        a pooled session agree with a direct forward bitwise."""
        cache = ArtifactCache()
        inputs = np.random.default_rng(3).standard_normal((16, 3, 8, 8))
        config = ServeConfig(batch_window_s=0.005, max_batch_size=4, engines=2)
        results = [None] * len(inputs)
        with ServingSession(artifact_path, config=config, cache=cache) as session:

            def client(offset):
                for index in range(offset, len(inputs), 4):
                    results[index] = session.predict(inputs[index], timeout=10)

            threads = [
                threading.Thread(target=client, args=(c,)) for c in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            reference_model = session.models[0]
            with no_grad():
                expected = reference_model(Tensor(np.asarray(inputs))).data
        for index in range(len(inputs)):
            row = results[index]
            assert row is not None
            # Forward on the executed micro-batch vs forward on the full
            # batch: bit-equality is not guaranteed across batch shapes,
            # so compare tightly instead (the bitwise guarantee is
            # covered by verify_replay above).
            np.testing.assert_allclose(row, expected[index], rtol=1e-9, atol=1e-12)


class TestReplayHarness:
    def test_cycle_inputs_wraps(self):
        images = np.arange(12, dtype=np.float64).reshape(3, 4)
        cycled = cycle_inputs(images, 7)
        assert cycled.shape == (7, 4)
        np.testing.assert_array_equal(cycled[3], images[0])
        with pytest.raises(ValueError):
            cycle_inputs(images[:0], 3)

    def test_replay_payload_figures(self, served_setup):
        _model, session, inputs, _dtype = served_setup
        run = replay_requests(session, inputs, concurrency=2)
        payload = run.payload
        assert payload["requests"] == len(inputs)
        assert payload["concurrency"] == 2
        assert payload["engines"] == 1
        assert payload["throughput_rps"] > 0
        assert payload["forwards"] >= 1
        assert payload["mean_batch_size"] >= 1.0
        assert payload["latency_ms"]["p95"] >= payload["latency_ms"]["p50"] >= 0
        assert run.outputs.shape == (len(inputs), 4)
        assert sorted(run.request_ids) == list(range(min(run.request_ids), min(run.request_ids) + len(inputs)))
        assert run.engine_indices == [0] * len(inputs)

    def test_replay_rejects_bad_concurrency(self, served_setup):
        _model, session, inputs, _dtype = served_setup
        with pytest.raises(ValueError):
            replay_requests(session, inputs, concurrency=0)

    def test_replay_rejects_empty_trace(self, served_setup):
        _model, session, inputs, _dtype = served_setup
        with pytest.raises(ValueError, match="at least one request"):
            replay_requests(session, inputs[:0], concurrency=2)
        with pytest.raises(ValueError, match="at least one request"):
            cycle_inputs(inputs, 0)

    def test_float32_inputs_still_verify_bit_exact(self, served_setup):
        # The parity check must compare against the same bytes the
        # engine saw (inputs coerced to the model's dtype), not the raw
        # input dtype.
        _model, session, inputs, _dtype = served_setup
        low_precision = inputs.astype(np.float32)
        run = replay_requests(session, low_precision, concurrency=2)
        assert verify_replay(session, low_precision, run) == len(inputs)

    def test_verify_replay_detects_corruption(self, served_setup):
        _model, session, inputs, _dtype = served_setup
        run = replay_requests(session, inputs, concurrency=2)
        run.outputs[0, 0] += 1.0
        with pytest.raises(AssertionError, match="bit-exact"):
            verify_replay(session, inputs, run)

    def test_trace_replay_on_fixed_pool_renders(self, served_setup):
        """Regression: a fixed (non-autoscaled) session's trace payload
        carries ``autoscale: {enabled: False}`` and must still render."""
        from repro.serve import TraceConfig, generate_trace, render_trace_replay, replay_trace

        _model, session, inputs, _dtype = served_setup
        trace = generate_trace(
            TraceConfig(kind="uniform", requests=6, rate_rps=500.0)
        )
        run = replay_trace(session, inputs, trace, slo_ms=1000.0)
        assert run.payload["autoscale"] == {"enabled": False}
        rendered = render_trace_replay(run.payload)
        assert "p95 vs SLO" in rendered
        assert "autoscale[" not in rendered

    def test_verify_replay_flags_partial_coverage(
        self, quantized_mlp_factory, tmp_path
    ):
        """Regression: batches carrying non-replay traffic are skipped,
        so the verified count silently falls short of the request count.
        ``expected`` turns that shortfall into a failure."""
        from repro.serve import ReplayRun

        model, manifest = quantized_mlp_factory()
        path = tmp_path / "model.cqw"
        save_artifact(path, model, manifest)
        inputs = np.random.default_rng(11).standard_normal((3, 3, 8, 8))
        config = ServeConfig(
            batch_window_s=0.01,
            max_batch_size=8,
            record_batches=True,
            autostart=False,
        )
        with ServingSession(path, cache=ArtifactCache(), config=config) as session:
            # A warmup request the replay run knows nothing about,
            # queued while the engine is stopped so it deterministically
            # coalesces into the same executed batch as the replay rows.
            warmup = session.submit(inputs[0])
            pendings = [session.submit(x) for x in inputs]
            session.start()
            outputs = np.stack([p.result(timeout=10) for p in pendings])
            warmup.result(timeout=10)
            run = ReplayRun(
                payload={},
                outputs=outputs,
                request_ids=[p.request_id for p in pendings],
                engine_indices=[p.engine_index for p in pendings],
            )
            # Unstrict: the contaminated batch is skipped, nothing at
            # all got verified — and nothing complained.
            assert verify_replay(session, inputs, run) < len(inputs)
            with pytest.raises(AssertionError, match="partial coverage"):
                verify_replay(session, inputs, run, expected=len(inputs))


class TestIntegerBackendParity:
    """The integer backend through the pooled serving paths: every
    leased integer compilation is bit-identical across engines, and the
    replay verifier's rescale-bound leg holds under concurrent load."""

    @pytest.fixture
    def artifact_path(self, quantized_mlp_factory, tmp_path):
        model, manifest = quantized_mlp_factory(act_bits=2)
        path = tmp_path / "model.cqw"
        save_artifact(path, model, manifest)
        return path

    def test_pooled_integer_engines_bit_identical(self, artifact_path):
        from repro.serve import IntegerServingModel

        cache = ArtifactCache()
        inputs = np.random.default_rng(17).standard_normal((24, 3, 8, 8))
        config = ServeConfig(
            batch_window_s=0.01,
            max_batch_size=4,
            record_batches=True,
            engines=2,
            backend="integer",
        )
        with ServingSession(artifact_path, config=config, cache=cache) as pooled:
            assert all(
                isinstance(model, IntegerServingModel)
                for model in pooled.models
            )
            assert pooled.models[0] is not pooled.models[1]
            run = replay_requests(pooled, inputs, concurrency=4)
            assert sorted(set(run.engine_indices)) == [0, 1]
            # Bitwise self-parity per engine + the rescale bound vs the
            # float prototype, both inside verify_replay.
            assert verify_replay(
                pooled, inputs, run, expected=len(inputs)
            ) == len(inputs)
            # Leased integer compilations are bit-identical: replay each
            # engine's executed batches through the *other* engine's
            # clone and demand bitwise agreement.
            index_of_all = {rid: [] for rid in run.request_ids}
            for engine_index, engine in enumerate(pooled.engines):
                index_of = {
                    rid: row
                    for row, (eng, rid) in enumerate(
                        zip(run.engine_indices, run.request_ids)
                    )
                    if eng == engine_index
                }
                other = pooled.models[1 - engine_index]
                for batch in engine.executed_batches():
                    rows = [index_of[rid] for rid in batch]
                    with no_grad():
                        mirrored = other(
                            Tensor(np.stack([inputs[row] for row in rows]))
                        ).data
                    for position, row in enumerate(rows):
                        np.testing.assert_array_equal(
                            run.outputs[row], mirrored[position]
                        )
        # Float prototype (the verifier's reference) + 2 integer leases
        # all came from one cache entry.
        assert cache.stats.misses == 1
        assert cache.active_leases() == 0

    def test_integer_session_answers_match_float_session_within_bound(
        self, artifact_path
    ):
        from repro.serve import integer_parity_rtol, load_artifact

        cache = ArtifactCache()
        inputs = np.random.default_rng(23).standard_normal((12, 3, 8, 8))
        with ServingSession(artifact_path, cache=cache) as session:
            expected = session.predict_batch(inputs)
        with ServingSession(
            artifact_path,
            cache=cache,
            config=ServeConfig(backend="integer", engines=2),
        ) as session:
            got = session.predict_batch(inputs)
        rtol = integer_parity_rtol(load_artifact(artifact_path).export)
        tolerance = rtol * max(1.0, float(np.max(np.abs(expected))))
        assert float(np.max(np.abs(got - expected))) <= tolerance
