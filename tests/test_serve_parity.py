"""The serving parity contract (tier-1).

Serving answers must be **bit-exact** with the fake-quantized model's
forward on the same inputs, end to end: fake-quant model → integer
export → CQW1 bitstream on disk → artifact cache → reconstructed model
→ micro-batching engine under concurrent load. This is the serving twin
of the evaluator's bit-exact contract (docs/architecture.md) and must
be preserved by any future serving change.
"""

import numpy as np
import pytest

from repro.quant.export import export_quantized_weights, verify_export
from repro.serve import (
    ArtifactCache,
    ServeConfig,
    ServingSession,
    cycle_inputs,
    replay_requests,
    save_artifact,
    verify_replay,
)
from repro.tensor.tensor import Tensor, no_grad


@pytest.fixture(params=[None, 2], ids=["weights-only", "act2"])
def served_setup(request, quantized_mlp_factory, tmp_path):
    """(fake-quant model, session serving its artifact from disk, inputs)."""
    model, manifest = quantized_mlp_factory(act_bits=request.param)
    # The export the artifact carries is strictly verified first: a
    # parity failure below then points at serving, not the export.
    verify_export(model, export_quantized_weights(model), strict=True)
    path = tmp_path / "model.cqw"
    save_artifact(path, model, manifest)
    cache = ArtifactCache()
    session = ServingSession(
        cache.load(path),
        config=ServeConfig(
            batch_window_s=0.01, max_batch_size=4, record_batches=True
        ),
    )
    inputs = np.random.default_rng(42).standard_normal((18, 3, 8, 8))
    yield model, session, inputs
    session.close()


class TestServingParity:
    def test_concurrent_replay_is_bit_exact_with_fake_quant_model(self, served_setup):
        fake_quant, session, inputs = served_setup
        run = replay_requests(session, inputs, concurrency=3)
        session.drain()

        # 1) Engine answers == serving model run directly on the same
        #    executed batches (the engine adds nothing).
        assert verify_replay(session, inputs, run) == len(inputs)

        # 2) Serving model == fake-quantized model, batch for batch:
        #    replay every executed batch through the *original*
        #    fake-quant model and require bitwise equality.
        index_of = {rid: i for i, rid in enumerate(run.request_ids)}
        verified = 0
        for batch in session.engine.executed_batches():
            rows = [index_of[rid] for rid in batch]
            with no_grad():
                reference = fake_quant(
                    Tensor(np.stack([inputs[row] for row in rows]))
                ).data
            for position, row in enumerate(rows):
                np.testing.assert_array_equal(run.outputs[row], reference[position])
                verified += 1
        assert verified == len(inputs)

    def test_single_request_parity(self, served_setup):
        fake_quant, session, inputs = served_setup
        x = inputs[0]
        got = session.predict(x)
        with no_grad():
            expected = fake_quant(Tensor(x[None])).data[0]
        np.testing.assert_array_equal(got, expected)


class TestReplayHarness:
    def test_cycle_inputs_wraps(self):
        images = np.arange(12, dtype=np.float64).reshape(3, 4)
        cycled = cycle_inputs(images, 7)
        assert cycled.shape == (7, 4)
        np.testing.assert_array_equal(cycled[3], images[0])
        with pytest.raises(ValueError):
            cycle_inputs(images[:0], 3)

    def test_replay_payload_figures(self, served_setup):
        _model, session, inputs = served_setup
        run = replay_requests(session, inputs, concurrency=2)
        payload = run.payload
        assert payload["requests"] == len(inputs)
        assert payload["concurrency"] == 2
        assert payload["throughput_rps"] > 0
        assert payload["forwards"] >= 1
        assert payload["mean_batch_size"] >= 1.0
        assert payload["latency_ms"]["p95"] >= payload["latency_ms"]["p50"] >= 0
        assert run.outputs.shape == (len(inputs), 4)
        assert sorted(run.request_ids) == list(range(min(run.request_ids), min(run.request_ids) + len(inputs)))

    def test_replay_rejects_bad_concurrency(self, served_setup):
        _model, session, inputs = served_setup
        with pytest.raises(ValueError):
            replay_requests(session, inputs, concurrency=0)

    def test_replay_rejects_empty_trace(self, served_setup):
        _model, session, inputs = served_setup
        with pytest.raises(ValueError, match="at least one request"):
            replay_requests(session, inputs[:0], concurrency=2)
        with pytest.raises(ValueError, match="at least one request"):
            cycle_inputs(inputs, 0)

    def test_float32_inputs_still_verify_bit_exact(self, served_setup):
        # The engine serves float64; the parity check must compare
        # against the same bytes the engine saw, not the raw dtype.
        _model, session, inputs = served_setup
        low_precision = inputs.astype(np.float32)
        run = replay_requests(session, low_precision, concurrency=2)
        assert verify_replay(session, low_precision, run) == len(inputs)

    def test_verify_replay_detects_corruption(self, served_setup):
        _model, session, inputs = served_setup
        run = replay_requests(session, inputs, concurrency=2)
        run.outputs[0, 0] += 1.0
        with pytest.raises(AssertionError, match="bit-exact"):
            verify_replay(session, inputs, run)
