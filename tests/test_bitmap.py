"""Tests for BitWidthMap: statistics, serialisation, validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant import BitWidthMap


def simple_map():
    return BitWidthMap(
        {"conv": np.array([0, 2, 4, 4]), "fc": np.array([1, 3])},
        {"conv": 9, "fc": 10},
    )


class TestConstruction:
    def test_missing_weight_count_raises(self):
        with pytest.raises(KeyError):
            BitWidthMap({"a": np.array([1])}, {})

    def test_non_1d_raises(self):
        with pytest.raises(ValueError):
            BitWidthMap({"a": np.zeros((2, 2))}, {"a": 1})

    def test_negative_bits_raise(self):
        with pytest.raises(ValueError):
            BitWidthMap({"a": np.array([-1])}, {"a": 1})

    def test_data_copied_not_aliased(self):
        bits = np.array([1, 2])
        bit_map = BitWidthMap({"a": bits}, {"a": 1})
        bits[0] = 7
        assert bit_map["a"][0] == 1

    def test_uniform_constructor(self):
        bit_map = BitWidthMap.uniform({"a": 3, "b": 2}, {"a": 4, "b": 5}, bits=3)
        assert bit_map.average_bits() == pytest.approx(3.0)
        np.testing.assert_array_equal(bit_map["a"], [3, 3, 3])


class TestStatistics:
    def test_average_bits_weighted(self):
        bit_map = simple_map()
        expected = (np.array([0, 2, 4, 4]).sum() * 9 + np.array([1, 3]).sum() * 10) / (
            4 * 9 + 2 * 10
        )
        assert bit_map.average_bits() == pytest.approx(expected)

    def test_histogram_counts_weights(self):
        histogram = simple_map().histogram(max_bits=4)
        assert histogram[0] == 9
        assert histogram[2] == 9
        assert histogram[4] == 18
        assert histogram[1] == 10
        assert histogram[3] == 10

    def test_histogram_includes_empty_bins(self):
        histogram = BitWidthMap({"a": np.array([4])}, {"a": 2}).histogram(4)
        assert histogram[1] == 0

    def test_pruned_fraction(self):
        bit_map = simple_map()
        assert bit_map.pruned_fraction() == pytest.approx(9 / 56)

    def test_max_bits(self):
        assert simple_map().max_bits() == 4

    def test_total_weights(self):
        assert simple_map().total_weights() == 56

    def test_len_and_iteration(self):
        bit_map = simple_map()
        assert len(bit_map) == 2
        assert sorted(bit_map) == ["conv", "fc"]
        assert "conv" in bit_map


class TestMutation:
    def test_set_bits(self):
        bit_map = simple_map()
        bit_map.set_bits("fc", np.array([4, 4]))
        np.testing.assert_array_equal(bit_map["fc"], [4, 4])

    def test_set_bits_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            simple_map().set_bits("fc", np.array([1, 2, 3]))

    def test_copy_independent(self):
        bit_map = simple_map()
        clone = bit_map.copy()
        clone.set_bits("fc", np.array([0, 0]))
        assert bit_map["fc"].sum() == 4


class TestSerialisation:
    def test_roundtrip(self):
        bit_map = simple_map()
        restored = BitWidthMap.from_dict(bit_map.to_dict())
        assert restored.average_bits() == pytest.approx(bit_map.average_bits())
        np.testing.assert_array_equal(restored["conv"], bit_map["conv"])

    def test_repr_contains_average(self):
        assert "avg_bits" in repr(simple_map())


class TestProperties:
    @given(
        bits=hnp.arrays(dtype=np.int64, shape=st.integers(1, 30), elements=st.integers(0, 8)),
        per_filter=st.integers(1, 50),
    )
    @settings(max_examples=50, deadline=None)
    def test_histogram_total_equals_total_weights(self, bits, per_filter):
        bit_map = BitWidthMap({"layer": bits}, {"layer": per_filter})
        histogram = bit_map.histogram(8)
        assert sum(histogram.values()) == bit_map.total_weights()

    @given(
        bits=hnp.arrays(dtype=np.int64, shape=st.integers(1, 30), elements=st.integers(0, 8)),
        per_filter=st.integers(1, 50),
    )
    @settings(max_examples=50, deadline=None)
    def test_average_consistent_with_histogram(self, bits, per_filter):
        bit_map = BitWidthMap({"layer": bits}, {"layer": per_filter})
        histogram = bit_map.histogram(8)
        expected = sum(b * count for b, count in histogram.items()) / sum(
            histogram.values()
        )
        assert bit_map.average_bits() == pytest.approx(expected)
