"""Hypothesis property tests on autograd and network invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor
from repro.tensor import functional as F

small_floats = st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False)

vectors = hnp.arrays(
    dtype=np.float64, shape=st.integers(1, 12), elements=small_floats
)

matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 6), st.integers(2, 8)),
    elements=small_floats,
)


class TestAlgebraicIdentities:
    @given(a=vectors)
    @settings(max_examples=60, deadline=None)
    def test_addition_commutes(self, a):
        x, y = Tensor(a), Tensor(a[::-1].copy())
        np.testing.assert_allclose((x + y).data, (y + x).data)

    @given(a=vectors)
    @settings(max_examples=60, deadline=None)
    def test_double_negation(self, a):
        x = Tensor(a)
        np.testing.assert_allclose((-(-x)).data, a)

    @given(a=vectors)
    @settings(max_examples=60, deadline=None)
    def test_relu_idempotent(self, a):
        x = Tensor(a)
        once = x.relu()
        twice = once.relu()
        np.testing.assert_array_equal(once.data, twice.data)

    @given(a=vectors)
    @settings(max_examples=60, deadline=None)
    def test_relu_non_negative(self, a):
        assert np.all(Tensor(a).relu().data >= 0)

    @given(a=vectors)
    @settings(max_examples=60, deadline=None)
    def test_sum_linear_in_scale(self, a):
        x = Tensor(a)
        np.testing.assert_allclose(
            (x * 3.0).sum().data, 3.0 * x.sum().data, rtol=1e-12
        )


class TestGradientIdentities:
    @given(a=vectors)
    @settings(max_examples=40, deadline=None)
    def test_sum_gradient_is_ones(self, a):
        x = Tensor(a, requires_grad=True)
        x.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones_like(a))

    @given(a=vectors)
    @settings(max_examples=40, deadline=None)
    def test_linear_combination_gradient(self, a):
        x = Tensor(a, requires_grad=True)
        (x * 2.0 + x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full_like(a, 5.0))

    @given(a=vectors)
    @settings(max_examples=40, deadline=None)
    def test_grad_of_mean_sums_to_one(self, a):
        x = Tensor(a, requires_grad=True)
        x.mean().backward()
        assert x.grad.sum() == pytest.approx(1.0)

    @given(m=matrices)
    @settings(max_examples=40, deadline=None)
    def test_softmax_rows_sum_to_one(self, m):
        out = F.softmax(Tensor(m), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(m.shape[0]), atol=1e-9)

    @given(m=matrices)
    @settings(max_examples=40, deadline=None)
    def test_softmax_gradient_orthogonal_to_ones(self, m):
        """d(softmax)/dx applied to any upstream grad sums to ~0 per row
        (probability mass is conserved)."""
        x = Tensor(m, requires_grad=True)
        rng = np.random.default_rng(0)
        upstream = rng.standard_normal(m.shape)
        F.softmax(x, axis=1).backward(upstream)
        np.testing.assert_allclose(x.grad.sum(axis=1), 0.0, atol=1e-9)

    @given(m=matrices)
    @settings(max_examples=40, deadline=None)
    def test_cross_entropy_nonnegative(self, m):
        labels = np.zeros(m.shape[0], dtype=np.int64)
        loss = F.cross_entropy(Tensor(m), labels)
        assert float(loss.data) >= -1e-12

    @given(m=matrices, shift=st.floats(-50, 50, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_softmax_shift_invariance(self, m, shift):
        a = F.softmax(Tensor(m)).data
        b = F.softmax(Tensor(m + shift)).data
        np.testing.assert_allclose(a, b, atol=1e-9)


class TestConvProperties:
    @given(
        x=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(
                st.integers(1, 2), st.integers(1, 3), st.just(6), st.just(6)
            ),
            elements=st.floats(-10, 10, allow_nan=False),
        ),
        scale=st.floats(0.1, 5.0, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_conv_linearity_in_input(self, x, scale):
        rng = np.random.default_rng(0)
        w = Tensor(rng.standard_normal((2, x.shape[1], 3, 3)))
        out1 = F.conv2d(Tensor(x * scale), w)
        out2 = F.conv2d(Tensor(x), w)
        np.testing.assert_allclose(out1.data, out2.data * scale, rtol=1e-9, atol=1e-9)

    @given(
        x=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 2), st.just(2), st.just(5), st.just(5)),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_maxpool_dominates_avgpool(self, x):
        max_out = F.max_pool2d(Tensor(x), 2).data
        avg_out = F.avg_pool2d(Tensor(x), 2).data
        assert np.all(max_out >= avg_out - 1e-12)

    @given(
        x=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.just(1), st.just(1), st.just(4), st.just(4)),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_global_avg_pool_is_mean(self, x):
        out = F.global_avg_pool2d(Tensor(x))
        assert out.data[0, 0] == pytest.approx(x.mean())
